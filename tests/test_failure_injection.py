"""Failure injection: malformed and adversarial inputs across the APIs.

Production-quality behavior under bad input means *loud, typed errors* —
never a silently wrong price. Every public entry point is poked with the
kinds of garbage a real integration would eventually send it.
"""

from __future__ import annotations

import math

import pytest

from repro import (
    AdditiveBid,
    BidError,
    GameConfigError,
    MechanismError,
    ReproError,
    SubstitutableBid,
    run_addoff,
    run_addon,
    run_shapley,
    run_substoff,
    run_subston,
)
from repro.baseline import optimal_price, run_regret_additive
from repro.baseline.regret import run_regret_substitutable
from repro.core.online import AddOnState, SubstOnState


class TestMechanismInputs:
    @pytest.mark.parametrize("cost", [0.0, -1.0, -math.inf])
    def test_bad_costs_rejected_everywhere(self, cost):
        with pytest.raises(MechanismError):
            run_shapley(cost, {1: 1.0})
        with pytest.raises(MechanismError):
            run_addon(cost, {1: AdditiveBid.single_slot(1, 1.0)})
        with pytest.raises(MechanismError):
            run_regret_additive(cost, {1: AdditiveBid.single_slot(1, 1.0)})

    def test_nan_cost_rejected(self):
        # NaN comparisons are silently false; the guard must catch it.
        with pytest.raises(MechanismError):
            run_shapley(math.nan, {1: 1.0})

    def test_negative_bid_rejected_in_matrix(self):
        with pytest.raises(MechanismError):
            run_substoff({1: 5.0}, {1: {1: -2.0}})

    def test_zero_cost_optimization_in_pool(self):
        with pytest.raises(MechanismError):
            run_subston(
                {1: 5.0, 2: 0.0},
                {1: SubstitutableBid.single_slot(1, 3.0, {1})},
            )

    def test_all_errors_share_a_root(self):
        for exc in (MechanismError, BidError, GameConfigError):
            assert issubclass(exc, ReproError)


class TestStateMachineMisuse:
    def test_addon_state_rejects_non_advancing_slots(self):
        state = AddOnState(10.0)
        state.step(1, {1: 20.0})
        with pytest.raises(MechanismError):
            state.step(1, {1: 20.0})
        with pytest.raises(MechanismError):
            state.step(0, {1: 20.0})

    def test_addon_state_allows_slot_gaps(self):
        state = AddOnState(10.0)
        state.step(1, {1: 0.0})
        state.step(5, {1: 20.0})  # skipping slots is legal (idle games)
        assert state.implemented_at == 5

    def test_subston_state_rejects_unknown_optimization(self):
        state = SubstOnState({1: 5.0})
        with pytest.raises(MechanismError):
            state.step(1, {1: {"ghost": 3.0}})

    def test_subston_state_rejects_non_advancing_slots(self):
        state = SubstOnState({1: 5.0})
        state.step(1, {})
        with pytest.raises(MechanismError):
            state.step(1, {})


class TestBidEdgeCases:
    def test_huge_values_do_not_overflow(self):
        result = run_shapley(1e12, {1: 1e15, 2: 1e15})
        assert result.price == pytest.approx(5e11)

    def test_tiny_costs_and_values(self):
        result = run_shapley(1e-9, {1: 1e-9})
        assert result.implemented

    def test_mixed_user_id_types(self):
        result = run_shapley(10.0, {1: 20.0, "a": 20.0, (2, "b"): 20.0})
        assert len(result.serviced) == 3

    def test_addon_bid_entirely_outside_horizon(self):
        bids = {1: AdditiveBid.over(5, [100.0])}
        outcome = run_addon(10.0, bids, horizon=3)
        assert not outcome.implemented
        # She never reaches her departure slot within the horizon: the
        # period ended before her interval, so no payment was recorded.
        assert outcome.payments == {}

    def test_zero_value_slots_are_legal(self):
        bids = {1: AdditiveBid.over(1, [0.0, 0.0, 30.0])}
        outcome = run_addon(10.0, bids)
        assert outcome.implemented_at == 1  # residual 30 covers from slot 1

    def test_substitutable_with_every_optimization(self):
        costs = {j: 10.0 for j in range(5)}
        bids = {1: SubstitutableBid.single_slot(1, 50.0, set(range(5)))}
        outcome = run_subston(costs, bids)
        assert len(outcome.implemented_at) == 1


class TestRegretEdgeCases:
    def test_zero_horizon(self):
        outcome = run_regret_additive(5.0, {}, horizon=0)
        assert not outcome.implemented
        assert outcome.regret_trace == (0.0,)

    def test_threshold_crossing_at_last_slot_wastes_cost(self):
        # Regret crosses exactly at the final slot: implemented, nothing
        # left to sell -> pure loss. This is the paper's core Regret flaw.
        bids = {1: AdditiveBid.over(1, [5.0, 5.0])}
        outcome = run_regret_additive(10.0, bids, horizon=2)
        assert not outcome.implemented  # R(2) = 5 < 10: never crosses
        bids = {1: AdditiveBid.over(1, [10.0, 5.0])}
        outcome = run_regret_additive(10.0, bids, horizon=2)
        assert outcome.implemented_at == 2
        assert outcome.serviced == frozenset()
        assert outcome.cloud_balance == pytest.approx(-10.0)

    def test_substitutable_empty_pool_games(self):
        outcome = run_regret_substitutable({}, {}, horizon=2)
        assert outcome.total_cost == 0.0

    def test_pricing_rejects_bad_cost(self):
        with pytest.raises(GameConfigError):
            optimal_price(-1.0, [1.0])

    def test_pricing_ignores_negative_residuals(self):
        # Defensive: negative residuals cannot occur from bids, but the
        # price search must not crash or count them.
        decision = optimal_price(10.0, [-5.0, 20.0])
        assert decision.payers == 1
        assert decision.price == pytest.approx(10.0)


class TestAddOffEdgeCases:
    def test_duplicate_user_across_optimizations_is_fine(self):
        outcome = run_addoff(
            {"a": 10.0, "b": 10.0},
            {"a": {1: 10.0}, "b": {1: 10.0}},
        )
        assert outcome.payment(1) == pytest.approx(20.0)

    def test_infinite_bid_in_offline_game(self):
        # Infinite bids are an internal device but must stay harmless.
        outcome = run_addoff({"a": 10.0}, {"a": {1: math.inf}})
        assert outcome.payment(1) == pytest.approx(10.0)
