"""Property-based tests: cost recovery and structural invariants.

The paper proves all four mechanisms cost-recovering; these tests check the
property on randomly generated games, plus the structural invariants the
proofs lean on (uniform prices, monotone cumulative sets, population
monotonicity of the Shapley mechanism).
"""

from __future__ import annotations


from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AdditiveBid, SubstitutableBid
from repro import run_addoff, run_addon, run_shapley, run_substoff, run_subston
from repro.core import accounting

TOL = 1e-6

user_ids = st.integers(min_value=0, max_value=11)
values = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
costs = st.floats(min_value=0.5, max_value=120.0, allow_nan=False)
bid_maps = st.dictionaries(user_ids, values, min_size=0, max_size=10)


@st.composite
def additive_online_games(draw, max_users: int = 8, max_slots: int = 6):
    """A random online additive game: cost plus per-user slot schedules."""
    cost = draw(costs)
    n_users = draw(st.integers(min_value=0, max_value=max_users))
    bids = {}
    for i in range(n_users):
        start = draw(st.integers(min_value=1, max_value=max_slots))
        duration = draw(st.integers(min_value=1, max_value=max_slots - start + 1))
        vals = draw(
            st.lists(values, min_size=duration, max_size=duration)
        )
        bids[i] = AdditiveBid.over(start, vals)
    return cost, bids


@st.composite
def substitutable_online_games(draw, max_users: int = 6, max_slots: int = 5):
    """A random online substitutable game over a small optimization pool."""
    n_opts = draw(st.integers(min_value=1, max_value=4))
    opt_costs = {
        j: draw(st.floats(min_value=0.5, max_value=80.0, allow_nan=False))
        for j in range(n_opts)
    }
    n_users = draw(st.integers(min_value=0, max_value=max_users))
    bids = {}
    for i in range(n_users):
        start = draw(st.integers(min_value=1, max_value=max_slots))
        duration = draw(st.integers(min_value=1, max_value=max_slots - start + 1))
        vals = draw(st.lists(values, min_size=duration, max_size=duration))
        subs = draw(
            st.sets(
                st.integers(min_value=0, max_value=n_opts - 1),
                min_size=1,
                max_size=n_opts,
            )
        )
        bids[i] = SubstitutableBid.over(start, vals, subs)
    return opt_costs, bids


class TestShapleyInvariants:
    @given(cost=costs, bids=bid_maps)
    def test_revenue_matches_cost_exactly_when_implemented(self, cost, bids):
        result = run_shapley(cost, bids)
        if result.implemented:
            assert abs(result.revenue - cost) < TOL
        else:
            assert result.revenue == 0.0

    @given(cost=costs, bids=bid_maps)
    def test_uniform_price_and_affordability(self, cost, bids):
        result = run_shapley(cost, bids)
        for user in result.serviced:
            assert result.payment(user) == result.price
            assert bids[user] >= result.price - TOL

    @given(cost=costs, bids=bid_maps)
    def test_non_serviced_pay_nothing(self, cost, bids):
        result = run_shapley(cost, bids)
        for user in bids:
            if user not in result.serviced:
                assert result.payment(user) == 0.0

    @given(cost=costs, bids=bid_maps, extra=values)
    def test_population_monotonicity(self, cost, bids, extra):
        """Adding a bidder never evicts anyone and never raises the price."""
        before = run_shapley(cost, bids)
        new_user = max(bids, default=-1) + 1
        grown = dict(bids)
        grown[new_user] = extra
        after = run_shapley(cost, grown)
        assert before.serviced <= after.serviced
        if before.implemented:
            assert after.price <= before.price + TOL

    @given(cost=costs, bids=bid_maps)
    def test_maximality_of_serviced_set(self, cost, bids):
        """No evicted user could afford the final price (fixed point)."""
        result = run_shapley(cost, bids)
        if not result.implemented:
            return
        for user, bid in bids.items():
            if user not in result.serviced:
                # Shares grow as the set shrinks, so every evicted user's bid
                # is below the share of her eviction round <= final price.
                assert bid < result.price + TOL


class TestAddOffCostRecovery:
    @given(
        opt_costs=st.dictionaries(
            st.integers(0, 3), st.floats(0.5, 60.0, allow_nan=False), max_size=4
        ),
        matrix=st.dictionaries(
            st.integers(0, 3), bid_maps, max_size=4
        ),
    )
    def test_cost_recovery(self, opt_costs, matrix):
        matrix = {j: row for j, row in matrix.items() if j in opt_costs}
        outcome = run_addoff(opt_costs, matrix)
        assert outcome.total_payment >= outcome.total_cost - TOL


class TestAddOnCostRecovery:
    @settings(max_examples=150)
    @given(game=additive_online_games())
    def test_cost_recovery(self, game):
        cost, bids = game
        outcome = run_addon(cost, bids)
        if outcome.implemented:
            assert outcome.total_payment >= cost - TOL
        else:
            assert outcome.total_payment == 0.0

    @settings(max_examples=150)
    @given(game=additive_online_games())
    def test_cumulative_sets_grow(self, game):
        cost, bids = game
        outcome = run_addon(cost, bids)
        for t in range(1, outcome.horizon + 1):
            assert outcome.cumulative(t - 1) <= outcome.cumulative(t)

    @settings(max_examples=150)
    @given(game=additive_online_games())
    def test_price_never_increases_after_implementation(self, game):
        cost, bids = game
        outcome = run_addon(cost, bids)
        if not outcome.implemented:
            return
        prices = [
            outcome.price_by_slot[t]
            for t in range(outcome.implemented_at, outcome.horizon + 1)
        ]
        for earlier, later in zip(prices, prices[1:]):
            assert later <= earlier + TOL

    @settings(max_examples=150)
    @given(game=additive_online_games())
    def test_every_payment_at_most_bid_total(self, game):
        """No serviced user pays more than her declared residual at service."""
        cost, bids = game
        outcome = run_addon(cost, bids)
        for user, bid in bids.items():
            if user in outcome.cumulative(outcome.horizon):
                # She pays the share at departure, which she could afford at
                # the slot she was admitted; the share only falls afterwards.
                assert outcome.payment(user) <= bid.total() + TOL

    @settings(max_examples=150)
    @given(game=additive_online_games())
    def test_nonnegative_user_utility_under_truth(self, game):
        """Individual rationality: truthful users never end up negative."""
        cost, bids = game
        outcome = run_addon(cost, bids)
        for user, bid in bids.items():
            utility = accounting.addon_user_utility(outcome, user, bid)
            assert utility >= -TOL


class TestSubstOffCostRecovery:
    @settings(max_examples=150)
    @given(
        opt_costs=st.dictionaries(
            st.integers(0, 3), st.floats(0.5, 60.0, allow_nan=False),
            min_size=1, max_size=4,
        ),
        data=st.data(),
    )
    def test_cost_recovery_and_single_grant(self, opt_costs, data):
        opts = list(opt_costs)
        matrix = data.draw(
            st.dictionaries(
                user_ids,
                st.dictionaries(st.sampled_from(opts), values, max_size=len(opts)),
                max_size=8,
            )
        )
        outcome = run_substoff(opt_costs, matrix)
        assert outcome.total_payment >= outcome.total_cost - TOL
        # Every implemented optimization is exactly paid for.
        by_opt: dict = {}
        for user, j in outcome.grants.items():
            by_opt.setdefault(j, 0.0)
            by_opt[j] += outcome.payment(user)
        for j in outcome.implemented:
            assert abs(by_opt.get(j, 0.0) - opt_costs[j]) < TOL

    @settings(max_examples=100)
    @given(
        opt_costs=st.dictionaries(
            st.integers(0, 3), st.floats(0.5, 60.0, allow_nan=False),
            min_size=1, max_size=4,
        ),
        data=st.data(),
    )
    def test_no_duplicate_implementations(self, opt_costs, data):
        opts = list(opt_costs)
        matrix = data.draw(
            st.dictionaries(
                user_ids,
                st.dictionaries(st.sampled_from(opts), values, max_size=len(opts)),
                max_size=8,
            )
        )
        outcome = run_substoff(opt_costs, matrix)
        assert len(outcome.implemented) == len(set(outcome.implemented))


class TestSubstOnCostRecovery:
    @settings(max_examples=120)
    @given(game=substitutable_online_games())
    def test_cost_recovery(self, game):
        opt_costs, bids = game
        outcome = run_subston(opt_costs, bids)
        assert accounting.cloud_balance(outcome) >= -TOL

    @settings(max_examples=120)
    @given(game=substitutable_online_games())
    def test_grants_respect_substitute_sets(self, game):
        opt_costs, bids = game
        outcome = run_subston(opt_costs, bids)
        for user, j in outcome.grants.items():
            assert j in bids[user].substitutes

    @settings(max_examples=120)
    @given(game=substitutable_online_games())
    def test_nonnegative_user_utility_under_truth(self, game):
        opt_costs, bids = game
        outcome = run_subston(opt_costs, bids)
        for user, bid in bids.items():
            utility = accounting.subston_user_utility(outcome, user, bid)
            assert utility >= -TOL

    @settings(max_examples=120)
    @given(game=substitutable_online_games())
    def test_grant_slot_within_interval(self, game):
        opt_costs, bids = game
        outcome = run_subston(opt_costs, bids)
        for user, slot in outcome.granted_at.items():
            assert bids[user].start <= slot <= max(bids[user].end, slot)
            assert slot <= outcome.horizon
