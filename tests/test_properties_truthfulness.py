"""Property-based truthfulness probes.

Offline mechanisms are truthful outright: on random games, no unilateral
misreport may beat truthful utility. Online mechanisms are truthful in the
*model-free* sense (Proposition 1): truth maximizes the minimum utility
over all futures, and that minimum is attained when no new bids arrive
after the user's own — so the online probes generate games where every
user is present from slot 1 (the no-future worst case) and assert truth
dominates there. Example 4 of the paper (an overbid that pays off thanks
to *particular* future arrivals) shows why the unrestricted dynamic claim
would be false; that case is covered in test_paper_examples.py.

Sybil resilience (Proposition 2): for additive mechanisms, a user splitting
into identities never *lowers* any other user's utility.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import AdditiveBid, run_addon, run_shapley, run_substoff
from repro.core import accounting

TOL = 1e-6

values = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
costs = st.floats(min_value=0.5, max_value=120.0, allow_nan=False)
bid_maps = st.dictionaries(
    st.integers(min_value=0, max_value=9), values, min_size=1, max_size=8
)


class TestShapleyTruthfulness:
    @settings(max_examples=300)
    @given(cost=costs, bids=bid_maps, lie=values)
    def test_no_unilateral_value_lie_improves_utility(self, cost, bids, lie):
        target = sorted(bids, key=repr)[0]
        truth = bids[target]

        honest = run_shapley(cost, bids)
        honest_utility = (
            truth - honest.payment(target) if target in honest.serviced else 0.0
        )

        deviated_bids = dict(bids)
        deviated_bids[target] = lie
        deviated = run_shapley(cost, deviated_bids)
        deviated_utility = (
            truth - deviated.payment(target) if target in deviated.serviced else 0.0
        )

        assert deviated_utility <= honest_utility + TOL

    @settings(max_examples=200)
    @given(cost=costs, bids=bid_maps)
    def test_truthful_utility_nonnegative(self, cost, bids):
        result = run_shapley(cost, bids)
        for user, bid in bids.items():
            if user in result.serviced:
                assert bid - result.payment(user) >= -TOL


@st.composite
def static_arrival_games(draw, max_users: int = 6, max_slots: int = 5):
    """Online additive games where every user arrives at slot 1.

    This is the model-free worst case: no bids arrive after anyone's own
    declaration, so truth must dominate any unilateral deviation.
    """
    cost = draw(costs)
    n_users = draw(st.integers(min_value=1, max_value=max_users))
    bids = {}
    for i in range(n_users):
        duration = draw(st.integers(min_value=1, max_value=max_slots))
        vals = draw(st.lists(values, min_size=duration, max_size=duration))
        bids[i] = AdditiveBid.over(1, vals)
    return cost, bids


@st.composite
def deviations(draw, max_slots: int = 5):
    """An arbitrary misreport: new start, duration, and values."""
    start = draw(st.integers(min_value=1, max_value=max_slots))
    duration = draw(st.integers(min_value=1, max_value=max_slots - start + 1))
    vals = draw(st.lists(values, min_size=duration, max_size=duration))
    return AdditiveBid.over(start, vals)


class TestAddOnModelFreeTruthfulness:
    @settings(max_examples=250)
    @given(game=static_arrival_games(), deviation=deviations())
    def test_truth_dominates_in_no_future_games(self, game, deviation):
        cost, bids = game
        target = 0
        truth = bids[target]
        horizon = max(max(b.end for b in bids.values()), deviation.end)

        honest_outcome = run_addon(cost, bids, horizon=horizon)
        honest_utility = accounting.addon_user_utility(honest_outcome, target, truth)

        deviated_bids = dict(bids)
        deviated_bids[target] = deviation
        deviated_outcome = run_addon(cost, deviated_bids, horizon=horizon)
        deviated_utility = accounting.addon_user_utility(
            deviated_outcome, target, truth
        )

        assert deviated_utility <= honest_utility + TOL

    @settings(max_examples=200)
    @given(game=static_arrival_games(), scale=st.floats(0.0, 3.0, allow_nan=False))
    def test_uniform_scaling_lies_never_help(self, game, scale):
        cost, bids = game
        target = 0
        truth = bids[target]
        lie = AdditiveBid.over(
            truth.start, [v * scale for v in truth.schedule.values]
        )

        honest = run_addon(cost, bids)
        honest_utility = accounting.addon_user_utility(honest, target, truth)

        deviated_bids = dict(bids)
        deviated_bids[target] = lie
        horizon = max(b.end for b in bids.values())
        deviated = run_addon(cost, deviated_bids, horizon=horizon)
        deviated_utility = accounting.addon_user_utility(deviated, target, truth)

        assert deviated_utility <= honest_utility + TOL


class TestSubstOffTruthfulness:
    @settings(max_examples=250)
    @given(
        opt_costs=st.dictionaries(
            st.integers(0, 3), st.floats(0.5, 60.0, allow_nan=False),
            min_size=1, max_size=4,
        ),
        data=st.data(),
        lie=values,
    )
    def test_no_unilateral_value_lie_improves_utility(self, opt_costs, data, lie):
        """Value lies with the substitute set held fixed never help."""
        opts = list(opt_costs)
        n_users = data.draw(st.integers(min_value=1, max_value=6))
        matrix = {}
        for i in range(n_users):
            subs = data.draw(
                st.sets(st.sampled_from(opts), min_size=1, max_size=len(opts))
            )
            value = data.draw(values)
            matrix[i] = {j: value for j in subs}
        target = 0
        truth_row = matrix[target]
        assume(truth_row)
        true_value = next(iter(truth_row.values()))

        honest = run_substoff(opt_costs, matrix)
        honest_granted = honest.grants.get(target)
        honest_utility = (
            true_value - honest.payment(target) if honest_granted is not None else 0.0
        )

        deviated_matrix = dict(matrix)
        deviated_matrix[target] = {j: lie for j in truth_row}
        deviated = run_substoff(opt_costs, deviated_matrix)
        deviated_granted = deviated.grants.get(target)
        deviated_utility = (
            true_value - deviated.payment(target)
            if deviated_granted is not None
            else 0.0
        )

        assert deviated_utility <= honest_utility + TOL


class TestSybilResilience:
    """Proposition 2: sybils under additive mechanisms never hurt others."""

    @settings(max_examples=200)
    @given(
        cost=costs,
        bids=bid_maps,
        split=st.integers(min_value=2, max_value=4),
    )
    def test_shapley_splitting_never_hurts_others(self, cost, bids, split):
        target = sorted(bids, key=repr)[0]

        honest = run_shapley(cost, bids)

        sybil_bids = {u: b for u, b in bids.items() if u != target}
        for k in range(split):
            sybil_bids[f"sybil-{k}"] = bids[target]
        deviated = run_shapley(cost, sybil_bids)

        # Every other user previously serviced is still serviced and pays
        # no more than before.
        for user in honest.serviced:
            if user == target:
                continue
            assert user in deviated.serviced
            assert deviated.payment(user) <= honest.payment(user) + TOL

    @settings(max_examples=100)
    @given(game=static_arrival_games(), split=st.integers(min_value=2, max_value=3))
    def test_addon_splitting_never_hurts_others(self, game, split):
        cost, bids = game
        target = 0
        honest = run_addon(cost, bids)

        sybil_bids = {u: b for u, b in bids.items() if u != target}
        for k in range(split):
            sybil_bids[f"sybil-{k}"] = bids[target]
        horizon = max(b.end for b in bids.values())
        deviated = run_addon(cost, sybil_bids, horizon=horizon)

        for user, bid in bids.items():
            if user == target:
                continue
            honest_utility = accounting.addon_user_utility(honest, user, bid)
            deviated_utility = accounting.addon_user_utility(deviated, user, bid)
            assert deviated_utility >= honest_utility - TOL
