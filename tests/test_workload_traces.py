"""Tests for trace generation and service replay."""

from __future__ import annotations

import pytest

from repro import AdditiveBid, GameConfigError, run_addon
from repro.workloads.traces import (
    Arrival,
    generate_additive_trace,
    replay_additive_trace,
)


class TestGeneration:
    def test_shape(self):
        trace = generate_additive_trace(0, 10, 12, ["idx", "view"])
        assert len(trace) == 10
        for arrival in trace:
            assert arrival.optimization in ("idx", "view")
            assert 1 <= arrival.bid.start <= arrival.bid.end <= 12

    def test_sorted_by_start(self):
        trace = generate_additive_trace(0, 30, 12, ["idx"])
        starts = [a.bid.start for a in trace]
        assert starts == sorted(starts)

    def test_duration_clamped_to_horizon(self):
        trace = generate_additive_trace(3, 50, 4, ["idx"], max_duration=10)
        assert all(a.bid.end <= 4 for a in trace)

    def test_validation(self):
        with pytest.raises(GameConfigError):
            generate_additive_trace(0, 5, 12, [])
        with pytest.raises(GameConfigError):
            generate_additive_trace(0, 5, 12, ["idx"], max_duration=0)


class TestReplay:
    def test_replay_matches_batch_mechanism(self):
        """Events through the live service == the batch AddOn run."""
        trace = generate_additive_trace(7, 12, 8, ["idx"])
        costs = {"idx": 0.8}
        report = replay_additive_trace(trace, costs, horizon=8)

        bids = {a.user: a.bid for a in trace}
        batch = run_addon(0.8, bids, horizon=8)
        for arrival in trace:
            assert report.payments.get(arrival.user, 0.0) == pytest.approx(
                batch.payment(arrival.user)
            )
        assert report.ledger.revenue == pytest.approx(batch.total_payment)

    def test_replay_two_optimizations(self):
        trace = [
            Arrival("a", "idx", AdditiveBid.over(1, [1.0])),
            Arrival("b", "view", AdditiveBid.over(2, [0.5])),
        ]
        report = replay_additive_trace(
            trace, {"idx": 0.6, "view": 0.4}, horizon=3
        )
        assert report.implemented == {"idx": 1, "view": 2}
        assert report.payments["a"] == pytest.approx(0.6)
        assert report.payments["b"] == pytest.approx(0.4)

    def test_cloud_balance_nonnegative_over_random_traces(self):
        for seed in range(10):
            trace = generate_additive_trace(seed, 15, 10, ["x", "y", "z"])
            report = replay_additive_trace(
                trace, {"x": 0.5, "y": 1.0, "z": 2.0}, horizon=10
            )
            assert report.cloud_balance >= -1e-9
