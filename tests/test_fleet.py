"""The fleet engine against the seed path, property-tested bit-for-bit.

The acceptance contract of ``repro.fleet``: running N games through one
:class:`~repro.fleet.engine.FleetEngine` must produce *exactly* the
grants, prices, payments, and implementation slots of running each game
through its own :class:`~repro.cloudsim.service.CloudService` (which the
online-equivalence suite in turn ties to the batch mechanism runners).
Also covered: bulk-vs-per-bid intake parity, shard-count invariance,
replay determinism, and the ledger/event-log invariants of the fleet path.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AdditiveBid, GameConfigError, MechanismError
from repro.cloudsim import (
    CloudService,
    OptimizationCatalog,
    OptimizationImplemented,
    UserCharged,
    UserDeparted,
    UserGranted,
)
from repro.core.online import AddOnState, step_changed_many
from repro.fleet import FleetBatch, FleetEngine, ShardMap
from repro.workloads import fleet_arrival_trace, fleet_batches, fleet_game_costs

values = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)


@st.composite
def fleet_games(draw, max_games=4, max_users=8, max_slots=5):
    """A multi-game additive population plus upward revision events."""
    n_games = draw(st.integers(1, max_games))
    costs = {
        f"g{j}": draw(st.floats(0.5, 120.0, allow_nan=False))
        for j in range(n_games)
    }
    n_users = draw(st.integers(1, max_users))
    bids = []
    for i in range(n_users):
        game = f"g{draw(st.integers(0, n_games - 1))}"
        start = draw(st.integers(1, max_slots))
        duration = draw(st.integers(1, max_slots - start + 1))
        schedule = draw(st.lists(values, min_size=duration, max_size=duration))
        bids.append((i, game, AdditiveBid.over(start, schedule)))
    revisions = []
    for i, game, bid in bids:
        if draw(st.booleans()):
            continue
        at = draw(st.integers(1, max_slots))
        slot = draw(st.integers(at, max_slots + 1))
        bump = draw(st.floats(0.0, 30.0, allow_nan=False))
        revisions.append((at, i, game, slot, bump))
    return costs, bids, sorted(revisions), max_slots + 1


def _run_fleet(costs, bids, revisions, horizon, shards=1):
    engine = FleetEngine(
        OptimizationCatalog.from_costs(costs), horizon=horizon, shards=shards
    )
    handles = {}
    for user, game, bid in bids:
        handles[(user, game)] = engine.place_bid(user, game, bid)
    pending = list(revisions)
    while engine.slot < horizon:
        upcoming = engine.slot + 1
        while pending and pending[0][0] == upcoming:
            _, user, game, slot, bump = pending.pop(0)
            current = handles[(user, game)].current
            engine.revise_bid(
                user, game, {slot: current.value_at(slot) + bump}
            )
        engine.advance_slot()
    return engine.run_to_end()


def _run_services(costs, bids, revisions, horizon):
    services = {
        game: CloudService(
            OptimizationCatalog.from_costs({game: cost}),
            horizon=horizon,
            mode="additive",
        )
        for game, cost in costs.items()
    }
    handles = {}
    for user, game, bid in bids:
        handles[(user, game)] = services[game].place_additive_bid(user, game, bid)
    pending = list(revisions)
    for upcoming in range(1, horizon + 1):
        while pending and pending[0][0] == upcoming:
            _, user, game, slot, bump = pending.pop(0)
            current = handles[(user, game)].current
            services[game].revise_additive_bid(
                user, game, {slot: current.value_at(slot) + bump}
            )
        for service in services.values():
            service.advance_slot()
    return {game: service.report() for game, service in services.items()}


def _merge_reports(reports):
    payments: dict = {}
    granted: dict = {}
    implemented: dict = {}
    revenue = 0.0
    for report in reports.values():
        for user, paid in report.payments.items():
            payments[user] = payments.get(user, 0.0) + paid
        granted.update(report.granted_at)
        implemented.update(report.implemented)
        revenue += report.ledger.revenue
    return payments, granted, implemented, revenue


class TestFleetMatchesSeedPath:
    @settings(max_examples=120, deadline=None)
    @given(game=fleet_games())
    def test_bit_for_bit_identical(self, game):
        costs, bids, revisions, horizon = game
        fleet = _run_fleet(costs, bids, revisions, horizon)
        payments, granted, implemented, revenue = _merge_reports(
            _run_services(costs, bids, revisions, horizon)
        )
        # Exact equality on purpose: both paths must compute the same
        # floats, not merely close ones. (Total revenue is a cross-game
        # sum, so only its association order differs — approx there.)
        assert dict(fleet.payments) == payments
        assert dict(fleet.granted_at) == granted
        assert dict(fleet.implemented) == implemented
        assert fleet.ledger.revenue == pytest.approx(revenue, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(game=fleet_games(), shards=st.integers(1, 6))
    def test_shard_count_never_changes_outcomes(self, game, shards):
        costs, bids, revisions, horizon = game
        one = _run_fleet(costs, bids, revisions, horizon, shards=1)
        many = _run_fleet(costs, bids, revisions, horizon, shards=shards)
        assert dict(one.payments) == dict(many.payments)
        assert dict(one.granted_at) == dict(many.granted_at)
        assert dict(one.implemented) == dict(many.implemented)

    @settings(max_examples=40, deadline=None)
    @given(game=fleet_games())
    def test_replay_is_deterministic(self, game):
        costs, bids, revisions, horizon = game
        first = _run_fleet(costs, bids, revisions, horizon, shards=3)
        second = _run_fleet(costs, bids, revisions, horizon, shards=3)
        assert first.events.all() == second.events.all()
        assert first.ledger.entries == second.ledger.entries


class TestBulkIngestParity:
    """The columnar intake must match per-bid placement exactly."""

    GAMES, USERS, SLOTS = 23, 2_000, 120

    @pytest.fixture(scope="class")
    def pair(self):
        costs = fleet_game_costs(5, self.GAMES, mean_cost=12.0)
        catalog = OptimizationCatalog.from_costs(costs)
        bulk = FleetEngine(catalog, horizon=self.SLOTS, shards=4)
        for batch in fleet_batches(6, self.USERS, self.GAMES, self.SLOTS):
            bulk.ingest(batch)
        per_bid = FleetEngine(catalog, horizon=self.SLOTS, shards=4)
        for arrival in fleet_arrival_trace(6, self.USERS, self.GAMES, self.SLOTS):
            per_bid.place_bid(arrival.user, arrival.optimization, arrival.bid)
        return bulk.run_to_end(), per_bid.run_to_end()

    def test_outcomes_identical(self, pair):
        bulk, per_bid = pair
        assert dict(bulk.payments) == dict(per_bid.payments)
        assert dict(bulk.granted_at) == dict(per_bid.granted_at)
        assert dict(bulk.implemented) == dict(per_bid.implemented)
        assert dict(bulk.game_revenue) == dict(per_bid.game_revenue)
        assert bulk.ledger.revenue == per_bid.ledger.revenue

    def test_mechanism_event_stream_identical(self, pair):
        # BidPlaced detail differs between intake paths by design, and
        # within-slot *departure* order follows each path's own intake
        # order (determinism is per intake stream, see DESIGN.md). The
        # grant/implementation sequence and the per-slot departure and
        # charge sets must match exactly.
        bulk, per_bid = pair

        def grant_sequence(report):
            keep = (UserGranted, OptimizationImplemented)
            return [e for e in report.events.all() if isinstance(e, keep)]

        def per_slot(report, event_type, key):
            slots: dict = {}
            for event in report.events.of_type(event_type):
                slots.setdefault(event.slot, set()).add(key(event))
            return slots

        assert grant_sequence(bulk) == grant_sequence(per_bid)
        assert per_slot(bulk, UserDeparted, lambda e: e.user) == per_slot(
            per_bid, UserDeparted, lambda e: e.user
        )
        assert per_slot(bulk, UserCharged, lambda e: (e.user, e.amount)) == (
            per_slot(per_bid, UserCharged, lambda e: (e.user, e.amount))
        )

    def test_some_games_actually_funded(self, pair):
        bulk, _ = pair
        assert bulk.implemented, "vacuous parity: no game ever implemented"
        assert len(bulk.implemented) < self.GAMES, (
            "vacuous parity: every game implemented instantly"
        )


class TestFleetInvariants:
    """Ledger and event-log invariants under the fleet path."""

    @pytest.fixture(scope="class")
    def report(self):
        costs = fleet_game_costs(11, 30, mean_cost=10.0)
        engine = FleetEngine(
            OptimizationCatalog.from_costs(costs), horizon=150, shards=8
        )
        for batch in fleet_batches(12, 3_000, 30, 150):
            engine.ingest(batch)
        return engine.run_to_end()

    def test_events_slot_ordered_across_shards(self, report):
        slots = [event.slot for event in report.events.all()]
        assert slots == sorted(slots)

    def test_invoices_at_departure_equal_per_game_revenue(self, report):
        per_game: dict = {}
        for entry in report.ledger.entries:
            if entry.kind == "invoice":
                per_game[entry.memo] = per_game.get(entry.memo, 0.0) + entry.amount
        for game in report.games:
            assert per_game.get(f"opt={game!r}", 0.0) == pytest.approx(
                report.revenue_of(game), abs=1e-12
            )

    def test_charges_match_ledger(self, report):
        charged = sum(e.amount for e in report.events.of_type(UserCharged))
        assert charged == pytest.approx(report.ledger.revenue)
        assert report.ledger.revenue == pytest.approx(
            sum(report.payments.values())
        )

    def test_every_implemented_game_recovers_its_cost(self, report):
        costs = {e.party: -e.amount for e in report.ledger.entries if e.kind == "build"}
        assert set(costs) == set(report.implemented)
        for game, cost in costs.items():
            # Departing users pay the share at their departure slot, which
            # only falls afterwards: total revenue covers the build.
            assert report.revenue_of(game) >= cost - 1e-9

    def test_grants_precede_charges(self, report):
        granted_slots = {
            (e.user, e.optimization): e.slot
            for e in report.events.of_type(UserGranted)
        }
        assert granted_slots == dict(report.granted_at)
        implemented_slots = {
            e.optimization: e.slot
            for e in report.events.of_type(OptimizationImplemented)
        }
        assert implemented_slots == dict(report.implemented)

    def test_every_user_departs_exactly_once(self, report):
        departures = [e.user for e in report.events.of_type(UserDeparted)]
        assert len(departures) == len(set(departures)) == 3_000
        assert set(report.payments) == set(departures)


class TestFleetApi:
    def catalog(self, n=3, cost=60.0):
        return OptimizationCatalog.from_costs({f"g{j}": cost for j in range(n)})

    def test_config_validation(self):
        with pytest.raises(GameConfigError):
            FleetEngine(self.catalog(), horizon=0)
        with pytest.raises(GameConfigError):
            FleetEngine(OptimizationCatalog(), horizon=5)
        with pytest.raises(GameConfigError):
            FleetEngine(self.catalog(), horizon=5, shards=0)

    def test_place_bid_validation(self):
        engine = FleetEngine(self.catalog(), horizon=5)
        with pytest.raises(GameConfigError):
            engine.place_bid(1, "ghost", AdditiveBid.over(1, [5.0]))
        with pytest.raises(GameConfigError):
            engine.place_bid(1, "g0", AdditiveBid.over(4, [1.0, 1.0, 1.0]))
        engine.place_bid(1, "g0", AdditiveBid.over(2, [5.0]))
        with pytest.raises(GameConfigError):
            engine.place_bid(1, "g0", AdditiveBid.over(3, [5.0]))
        engine.advance_slot()
        with pytest.raises(GameConfigError):
            engine.place_bid(2, "g0", AdditiveBid.over(1, [5.0]))

    def test_ingest_validation(self):
        engine = FleetEngine(self.catalog(), horizon=5)

        def batch(**overrides):
            fields = dict(
                users=(1, 2),
                opt_ranks=np.array([0, 1]),
                starts=np.array([1, 2]),
                values=np.array([[3.0, 1.0], [2.0, 0.5]]),
            )
            fields.update(overrides)
            return FleetBatch(**fields)

        with pytest.raises(GameConfigError):
            engine.ingest(batch(starts=np.array([0, 2])))
        with pytest.raises(GameConfigError):
            engine.ingest(batch(starts=np.array([1, 5])))
        with pytest.raises(GameConfigError):
            engine.ingest(batch(opt_ranks=np.array([0, 9])))
        with pytest.raises(GameConfigError):
            engine.ingest(batch(values=np.array([[3.0, 1.0], [2.0, -0.5]])))
        assert engine.ingest(batch()) == 2
        engine.advance_slot()
        with pytest.raises(MechanismError):
            engine.ingest(batch())

    def test_rank_round_trip(self):
        engine = FleetEngine(self.catalog(), horizon=5)
        assert [engine.rank_of(g) for g in engine.report().games] == [0, 1, 2]
        with pytest.raises(GameConfigError):
            engine.rank_of("ghost")

    def test_handle_bid_duplicating_bulk_bid_rejected(self):
        catalog = OptimizationCatalog.from_costs({"g0": 10.0, "g1": 10.0})
        engine = FleetEngine(catalog, horizon=5)
        engine.ingest(
            FleetBatch(
                users=("ann", "bob"),
                opt_ranks=np.array([0, 1]),
                starts=np.array([1, 2]),
                values=np.array([[3.0, 1.0], [2.0, 0.5]]),
            )
        )
        with pytest.raises(GameConfigError, match="already bid"):
            engine.place_bid("ann", "g0", AdditiveBid.over(2, [5.0]))
        # ... and symmetrically: a bulk bid landing on a handle-taken
        # (user, game) pair is rejected at ingest.
        engine.place_bid("cara", "g0", AdditiveBid.over(2, [5.0]))
        with pytest.raises(GameConfigError, match="already bid"):
            engine.ingest(
                FleetBatch(
                    users=("cara",),
                    opt_ranks=np.array([0]),
                    starts=np.array([1]),
                    values=np.array([[4.0]]),
                )
            )
        # Same user on a *different* game is fine.
        engine.place_bid("ann", "g1", AdditiveBid.over(3, [5.0]))
        report = engine.run_to_end()
        assert [e.user for e in report.events.of_type(UserDeparted)].count(
            "ann"
        ) == 2  # one departure per distinct end slot, never doubled

    def test_mixed_intake_keeps_shard_major_event_order(self):
        # A bulk bid on rank 1 and a handle bid on rank 0, both granting
        # in the same slot: rank 0 must step (and emit) first.
        catalog = OptimizationCatalog.from_costs({"g0": 10.0, "g1": 10.0})
        engine = FleetEngine(catalog, horizon=3)
        engine.ingest(
            FleetBatch(
                users=("bulk",),
                opt_ranks=np.array([1]),
                starts=np.array([2]),
                values=np.array([[12.0]]),
            )
        )
        engine.place_bid("handle", "g0", AdditiveBid.over(2, [12.0]))
        report = engine.run_to_end()
        grants = [
            (e.optimization, e.user) for e in report.events.of_type(UserGranted)
        ]
        assert grants == [("g0", "handle"), ("g1", "bulk")]

    def test_handle_bid_on_funded_bulk_game(self):
        # A per-bid placement landing on a game the bulk path already
        # funded must merge into the same slot step, not double-step it.
        catalog = OptimizationCatalog.from_costs({"g0": 10.0})
        engine = FleetEngine(catalog, horizon=6)
        engine.ingest(
            FleetBatch(
                users=("bulk-1", "bulk-2"),
                opt_ranks=np.array([0, 0]),
                starts=np.array([1, 1]),
                values=np.array([[8.0, 8.0], [8.0, 8.0]]),
            )
        )
        engine.advance_slot()  # funds g0: 16 >= 10
        assert engine.report().implemented == {"g0": 1}
        engine.place_bid("late", "g0", AdditiveBid.over(2, [9.0, 9.0]))
        report = engine.run_to_end()
        assert report.grant_slot("late", "g0") == 2
        assert report.payments["late"] > 0

    def test_revision_extends_departure(self):
        catalog = OptimizationCatalog.from_costs({"g0": 100.0})
        engine = FleetEngine(catalog, horizon=4)
        engine.place_bid(1, "g0", AdditiveBid.over(1, [40.0, 40.0]))
        engine.advance_slot()
        assert engine.report().implemented == {}
        engine.revise_bid(1, "g0", {3: 120.0})
        report = engine.run_to_end()
        assert report.implemented == {"g0": 2}
        assert report.payments[1] == pytest.approx(100.0)

    def test_period_end(self):
        engine = FleetEngine(self.catalog(), horizon=1)
        engine.run_to_end()
        with pytest.raises(MechanismError):
            engine.advance_slot()


class TestShardMap:
    def test_round_robin_order(self):
        shard_map = ShardMap(7, shards=3)
        assert shard_map.order == [0, 3, 6, 1, 4, 2, 5]
        assert shard_map.members(1) == [1, 4]
        assert [shard_map.shard_of(r) for r in range(7)] == [0, 1, 2, 0, 1, 2, 0]
        ranks = sorted(range(7), key=shard_map.process_rank.__getitem__)
        assert ranks == shard_map.order

    def test_validation(self):
        with pytest.raises(GameConfigError):
            ShardMap(-1)
        with pytest.raises(GameConfigError):
            ShardMap(3, shards=0)
        with pytest.raises(GameConfigError):
            ShardMap(3).shard_of(3)
        with pytest.raises(GameConfigError):
            ShardMap(3, shards=2).members(2)

    def test_more_shards_than_games(self):
        shard_map = ShardMap(2, shards=5)
        assert shard_map.order == [0, 1]
        assert len(shard_map) == 5


class TestStepChangedMany:
    def test_matches_individual_steps(self):
        costs = {"a": 30.0, "b": 45.0}
        batch = {j: AddOnState(c) for j, c in costs.items()}
        single = {j: AddOnState(c) for j, c in costs.items()}
        rng = np.random.default_rng(3)
        for t in range(1, 12):
            changed = {
                j: {
                    int(u): float(rng.uniform(0, 20))
                    for u in rng.integers(0, 40, size=5)
                }
                for j in costs
                if rng.random() < 0.8
            }
            deltas = step_changed_many(batch, t, changed)
            assert set(deltas) == set(changed)
            for j, residuals in changed.items():
                delta = single[j].step_changed(t, residuals)
                assert delta == deltas[j]
        for j in costs:
            assert batch[j].cumulative == single[j].cumulative
            assert batch[j].price == single[j].price

    def test_infinite_bid_forces_through_batch(self):
        states = {"a": AddOnState(10.0)}
        deltas = step_changed_many(states, 1, {"a": {7: math.inf}})
        assert deltas["a"].newly_serviced == frozenset({7})
        assert states["a"].implemented_at == 1
