"""The advisor loop: workload mining, enumeration, pricing, adoption."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GameConfigError, QueryError
from repro.advisor import (
    AdvisorConfig,
    OptimizationAdvisor,
    QueryTemplate,
    WorkloadLog,
    enumerate_candidates,
)
from repro.db import (
    CandidateIndex,
    CandidateView,
    Catalog,
    CostModel,
    QueryEngine,
    Schema,
    Table,
)
from repro.db.planner import view_name_for


def make_catalog(rows: int = 300, halos: int = 6) -> Catalog:
    """Two snapshot-shaped tables with deterministic halo labels."""
    catalog = Catalog()
    rng = np.random.default_rng(9)
    for name in ("snap_01", "snap_02"):
        halo = rng.integers(-1, halos, size=rows)
        catalog.create_table(
            Table.from_columns(
                name,
                Schema.of(
                    pid="int", x="float", y="float", z="float", vx="float",
                    vy="float", vz="float", mass="float", halo="int",
                ),
                {
                    "pid": np.arange(rows),
                    "x": rng.normal(size=rows),
                    "y": rng.normal(size=rows),
                    "z": rng.normal(size=rows),
                    "vx": rng.normal(size=rows),
                    "vy": rng.normal(size=rows),
                    "vz": rng.normal(size=rows),
                    "mass": rng.uniform(1, 2, size=rows),
                    "halo": halo,
                },
            )
        )
    return catalog


def logged_engine(catalog) -> tuple[QueryEngine, WorkloadLog]:
    log = WorkloadLog()
    return QueryEngine(catalog, log=log), log


class TestWorkloadLog:
    def test_engine_records_normalized_templates(self):
        catalog = make_catalog()
        engine, log = logged_engine(catalog)
        with log.tenant("ada"):
            engine.halo_members("snap_02", 0)
            engine.halo_members("snap_02", 1)  # same template, new constant
            engine.progenitor_histogram("snap_01", {1, 2, 3})
        assert len(log) == 2, "constants must not split templates"
        members = [t for t in log.templates_of("snap_02") if t.kind == "members"]
        assert members[0].key_column == "halo"
        assert members[0].excluded == (("halo", -1),)
        usage = log.usage_of("ada", members[0])
        assert usage.passes == 2.0 and usage.probes == 2.0
        histogram = log.templates_of("snap_01")[0]
        assert log.usage_of("ada", histogram).probes == 3.0

    def test_tenant_attribution_and_defaults(self):
        catalog = make_catalog()
        engine, log = logged_engine(catalog)
        engine.halo_members("snap_01", 0)  # outside any tenant block
        with log.tenant("bea"):
            engine.halo_members("snap_01", 0)
        assert set(log.tenants) == {"tenant-0", "bea"}

    def test_validation(self):
        log = WorkloadLog()
        with pytest.raises(GameConfigError):
            log.record_query(kind="members", table_name="t", columns=())
        template = QueryTemplate("members", "t", ("a",))
        with pytest.raises(GameConfigError):
            log.record(template, passes=0.0)
        with pytest.raises(GameConfigError):
            log.record(template, probes=-1.0)


class TestEnumeration:
    def test_views_and_indexes_enumerated(self):
        catalog = make_catalog()
        engine, log = logged_engine(catalog)
        with log.tenant("ada"):
            engine.top_contributor("snap_02", 0, "snap_01")
        candidates = enumerate_candidates(catalog, log)
        names = {c.name for c in candidates.candidates}
        assert view_name_for("snap_02") in names
        assert "ix_snap_02_halo" in names
        assert "ix_snap_01_pid" in names
        view = candidates.by_name(view_name_for("snap_02"))
        assert isinstance(view, CandidateView)
        assert set(view.columns) == {"pid", "halo"}
        assert 0.0 < view.keep_fraction <= 1.0
        index = candidates.by_name("ix_snap_01_pid")
        assert isinstance(index, CandidateIndex)
        assert index.kind == "hash" and index.probes_per_run > 1.0

    def test_enumeration_registers_stats(self):
        catalog = make_catalog()
        engine, log = logged_engine(catalog)
        with log.tenant("ada"):
            engine.halo_members("snap_02", 0)
        assert catalog.stats("snap_02") is None
        enumerate_candidates(catalog, log)
        stats = catalog.stats("snap_02")
        assert stats is not None
        assert stats.column("halo").distinct > 0

    def test_range_templates_yield_sorted_candidates(self):
        catalog = make_catalog()
        log = WorkloadLog()
        log.record_query(
            kind="range",
            table_name="snap_01",
            columns=("pid", "mass"),
            key_column="mass",
        )
        candidates = enumerate_candidates(catalog, log)
        sorted_ix = candidates.by_name("ix_snap_01_mass_sorted")
        assert sorted_ix.kind == "sorted"

    def test_unknown_candidate_name_raises(self):
        catalog = make_catalog()
        candidates = enumerate_candidates(catalog, WorkloadLog())
        with pytest.raises(GameConfigError):
            candidates.by_name("nope")


class TestAdvisor:
    def advise(self, dollars_per_byte: float = 1e-6):
        catalog = make_catalog()
        engine, log = logged_engine(catalog)
        with log.tenant("ada"):
            engine.top_contributor("snap_02", 0, "snap_01")
        with log.tenant("bea"):
            engine.top_contributor("snap_02", 1, "snap_01")
        advisor = OptimizationAdvisor(
            catalog,
            config=AdvisorConfig(horizon=6, dollars_per_byte=dollars_per_byte),
        )
        return catalog, engine, advisor.advise(log)

    def test_funded_designs_are_adopted(self):
        catalog, engine, outcome = self.advise()
        assert outcome.adopted, "cheap storage must fund something"
        assert outcome.adopted == outcome.funded
        for name in outcome.adopted:
            candidate = outcome.candidates.by_name(name)
            if isinstance(candidate, CandidateIndex):
                lookup = (
                    catalog.sorted_index
                    if candidate.kind == "sorted"
                    else catalog.hash_index
                )
                assert lookup(candidate.table_name, candidate.column) is not None
            else:
                assert catalog.has_view(name)
        assert outcome.build_meter.build_bytes > 0, "adoption is metered work"

    def test_adopted_design_changes_plans(self):
        catalog, engine, outcome = self.advise()
        assert view_name_for("snap_02") in outcome.adopted
        result = engine.halo_members("snap_02", 0)
        assert result.source in ("view", "index")

    def test_expensive_storage_funds_nothing(self):
        catalog, engine, outcome = self.advise(dollars_per_byte=1e6)
        assert outcome.funded == ()
        assert outcome.adopted == ()
        assert catalog.view_names == []

    def test_empty_log_yields_empty_outcome(self):
        catalog = make_catalog()
        advisor = OptimizationAdvisor(catalog)
        outcome = advisor.advise(WorkloadLog())
        assert outcome.report is None
        assert outcome.adopted == ()

    def test_config_validation(self):
        with pytest.raises(GameConfigError):
            AdvisorConfig(horizon=0)
        with pytest.raises(GameConfigError):
            AdvisorConfig(runs_per_slot=0.0)


class TestCandidateIndexPricing:
    def test_index_quote_matches_per_candidate_methods(self):
        catalog = make_catalog()
        catalog.analyze_table("snap_01", ["pid", "halo"])
        from repro.db import SavingsEstimator

        estimator = SavingsEstimator(catalog, CostModel())
        candidate = CandidateIndex(
            "ix", "snap_01", "halo", kind="hash", probes_per_run=2.0
        )
        quotes = estimator.price_many([candidate])
        quote = quotes["ix"]
        assert quote.kind == "hash"
        assert quote.view_rows == estimator.index_rows(candidate)
        assert quote.view_bytes == estimator.index_bytes(candidate)
        assert quote.build_units == estimator.index_build_units(candidate)
        assert quote.saving_units_per_run == estimator.index_saving_units_per_run(
            candidate
        )

    def test_expected_matches_use_stats(self):
        catalog = make_catalog()
        from repro.db import SavingsEstimator

        estimator = SavingsEstimator(catalog, CostModel())
        candidate = CandidateIndex("ix", "snap_01", "halo")
        # Without stats: the conservative unique-key fallback.
        assert estimator.expected_matches_per_run(candidate) == 1.0
        stats = catalog.analyze_table("snap_01", ["halo"])
        expected = stats.estimated_rows_eq("halo")
        assert estimator.expected_matches_per_run(candidate) == pytest.approx(
            expected
        )

    def test_sorted_candidate_uses_range_selectivity(self):
        catalog = make_catalog()
        catalog.analyze_table("snap_01", ["mass"])
        from repro.db import SavingsEstimator

        estimator = SavingsEstimator(catalog, CostModel())
        full = CandidateIndex("ix_full", "snap_01", "mass", kind="sorted")
        stats = catalog.stats("snap_01")
        lo = stats.column("mass").minimum
        hi = stats.column("mass").maximum
        half = CandidateIndex(
            "ix_half", "snap_01", "mass", kind="sorted",
            low=lo, high=(lo + hi) / 2,
        )
        assert estimator.expected_matches_per_run(half) < (
            estimator.expected_matches_per_run(full)
        )

    def test_candidate_index_validation(self):
        with pytest.raises(GameConfigError):
            CandidateIndex("ix", "t", "c", kind="btree")
        with pytest.raises(GameConfigError):
            CandidateIndex("ix", "t", "c", probes_per_run=0.0)


class TestAnalyzeErrorHygiene:
    def test_unknown_column_raises_query_error_with_table_name(self):
        catalog = make_catalog()
        with pytest.raises(QueryError, match="snap_01"):
            catalog.analyze_table("snap_01", ["nope"])

    def test_no_bare_keyerror(self):
        from repro.db.stats import analyze

        table = Table("orders", Schema.of(total="float"))
        try:
            analyze(table, ["customer"])
        except QueryError as exc:
            assert "orders" in str(exc)
            assert "customer" in str(exc)
        else:
            pytest.fail("expected QueryError")


class TestAdvisorLoopDriver:
    def test_loop_cuts_cost_and_reports_series(self):
        from repro.experiments import AdvisorLoopConfig, run_advisor_loop

        loop = run_advisor_loop(
            AdvisorLoopConfig(particles=800, snapshots=2, horizon=4)
        )
        assert loop.outcome.adopted
        assert loop.cost_ratio > 1.0
        assert loop.result.names == [
            "baseline [units]", "advised [units]", "ratio [x]",
        ]
        baseline = loop.result.get("baseline [units]")
        advised = loop.result.get("advised [units]")
        assert all(b >= a for b, a in zip(baseline.y, advised.y))

    def test_cli_advise_command(self, capsys):
        from repro.cli import main

        assert main(
            ["advise", "--particles", "800", "--snapshots", "2", "--slots", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "adopted:" in out
        assert "cheaper" in out

    def test_cli_list_mentions_advise(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        assert "advise" in capsys.readouterr().out
