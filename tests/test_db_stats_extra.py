"""Tests for table statistics, the extra operators, and index-aware plans."""

from __future__ import annotations

import pytest

from repro import QueryError
from repro.db import Catalog, CostMeter, Schema, SeqScan, Table
from repro.db.extra_operators import (
    Distinct,
    GroupAggregate,
    Limit,
    Sort,
    top_k,
)
from repro.db.planner import histogram_plan, members_plan, what_if_index_units
from repro.db.stats import analyze


@pytest.fixture()
def halos_table():
    table = Table("snap_01", Schema.of(
        pid="int", x="float", y="float", z="float",
        vx="float", vy="float", vz="float", mass="float", halo="int",
    ))
    for pid in range(60):
        halo = pid % 3 if pid < 45 else -1
        table.insert((pid, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, float(pid), halo))
    return table


class TestAnalyze:
    def test_row_count_and_width(self, halos_table):
        stats = analyze(halos_table)
        assert stats.row_count == 60
        assert stats.row_width == 72
        assert stats.estimated_scan_bytes() == 60 * 72

    def test_distinct_counts(self, halos_table):
        stats = analyze(halos_table)
        assert stats.column("pid").distinct == 60
        assert stats.column("halo").distinct == 4  # 0, 1, 2, -1

    def test_min_max(self, halos_table):
        stats = analyze(halos_table)
        assert stats.column("mass").minimum == 0.0
        assert stats.column("mass").maximum == 59.0

    def test_eq_selectivity(self, halos_table):
        stats = analyze(halos_table)
        assert stats.column("halo").eq_selectivity() == pytest.approx(0.25)
        assert stats.estimated_rows_eq("halo") == pytest.approx(15.0)

    def test_range_selectivity(self, halos_table):
        stats = analyze(halos_table)
        mass = stats.column("mass")
        assert mass.range_selectivity(0.0, 59.0) == pytest.approx(1.0)
        assert mass.range_selectivity(0.0, 29.5) == pytest.approx(0.5)
        assert mass.range_selectivity(100.0, 200.0) == 0.0
        assert mass.range_selectivity(None, None) == pytest.approx(1.0)

    def test_unknown_column(self, halos_table):
        stats = analyze(halos_table)
        with pytest.raises(QueryError):
            stats.column("ghost")


@pytest.fixture()
def small_table():
    table = Table("t", Schema.of(k="int", v="float"))
    table.extend([(2, 10.0), (1, 5.0), (2, 30.0), (3, 1.0), (1, 5.0)])
    return table


class TestExtraOperators:
    def test_sort_ascending_descending(self, small_table):
        meter = CostMeter()
        rows = Sort(SeqScan(small_table), "v").materialize(meter)
        assert [r[1] for r in rows] == [1.0, 5.0, 5.0, 10.0, 30.0]
        rows = Sort(SeqScan(small_table), "v", descending=True).materialize(meter)
        assert rows[0][1] == 30.0
        assert meter.build_bytes > 0

    def test_limit(self, small_table):
        meter = CostMeter()
        rows = Limit(SeqScan(small_table), 2).materialize(meter)
        assert len(rows) == 2
        assert Limit(SeqScan(small_table), 0).materialize(meter) == []
        with pytest.raises(QueryError):
            Limit(SeqScan(small_table), -1)

    def test_distinct(self, small_table):
        meter = CostMeter()
        rows = Distinct(SeqScan(small_table)).materialize(meter)
        assert len(rows) == 4  # (1, 5.0) deduplicated

    def test_top_k(self, small_table):
        meter = CostMeter()
        rows = top_k(SeqScan(small_table), "v", 2).materialize(meter)
        assert [r[1] for r in rows] == [30.0, 10.0]

    @pytest.mark.parametrize(
        "aggregate,expected",
        [
            ("count", {1: 2, 2: 2, 3: 1}),
            ("sum", {1: 10.0, 2: 40.0, 3: 1.0}),
            ("min", {1: 5.0, 2: 10.0, 3: 1.0}),
            ("max", {1: 5.0, 2: 30.0, 3: 1.0}),
            ("avg", {1: 5.0, 2: 20.0, 3: 1.0}),
        ],
    )
    def test_group_aggregate(self, small_table, aggregate, expected):
        meter = CostMeter()
        plan = GroupAggregate(SeqScan(small_table), "k", "v", aggregate)
        assert dict(plan.materialize(meter)) == expected

    def test_group_aggregate_schema(self, small_table):
        plan = GroupAggregate(SeqScan(small_table), "k", "v", "sum")
        assert plan.schema.names == ("k", "sum")

    def test_unknown_aggregate(self, small_table):
        with pytest.raises(QueryError):
            GroupAggregate(SeqScan(small_table), "k", "v", "median")


class TestIndexAwarePlans:
    def test_members_plan_prefers_halo_index(self, halos_table):
        catalog = Catalog()
        catalog.create_table(halos_table)
        baseline = members_plan(catalog, "snap_01", 1)
        assert baseline.source == "base"
        catalog.create_hash_index("snap_01", "halo")
        indexed = members_plan(catalog, "snap_01", 1)
        assert indexed.source == "index"
        # Same result either way.
        base_rows = sorted(baseline.plan.materialize(CostMeter()))
        index_rows = sorted(indexed.plan.materialize(CostMeter()))
        assert base_rows == index_rows

    def test_members_index_is_cheaper(self, halos_table):
        catalog = Catalog()
        catalog.create_table(halos_table)
        from repro.db.costmodel import CostModel

        model = CostModel()
        scan_meter = CostMeter()
        members_plan(catalog, "snap_01", 1).plan.materialize(scan_meter)
        catalog.create_hash_index("snap_01", "halo")
        index_meter = CostMeter()
        members_plan(catalog, "snap_01", 1).plan.materialize(index_meter)
        assert model.units(index_meter) < model.units(scan_meter)

    def test_histogram_plan_prefers_pid_index_for_small_sets(self, halos_table):
        catalog = Catalog()
        catalog.create_table(halos_table)
        catalog.create_hash_index("snap_01", "pid")
        pids = {0, 1, 2, 3}
        choice = histogram_plan(catalog, "snap_01", pids)
        assert choice.source == "index"
        baseline = Catalog()
        baseline.create_table(halos_table)
        base_choice = histogram_plan(baseline, "snap_01", pids)
        assert sorted(choice.plan.materialize(CostMeter())) == sorted(
            base_choice.plan.materialize(CostMeter())
        )

    def test_histogram_falls_back_for_huge_probe_sets(self, halos_table):
        catalog = Catalog()
        catalog.create_table(halos_table)
        catalog.create_hash_index("snap_01", "pid")
        # Probing 60 pids costs 60 probes * 32 + emits; the narrow scan is
        # 60 * 72 = 4320 units — still pricier, so make the probe set big
        # relative to a *view*: with the view the scan is 60*16 = 960 < the
        # index estimate for 60 probes (60*32 + 60*4 = 2160).
        from repro.db import MaterializedView
        from repro.db.planner import view_name_for

        catalog.create_view(
            MaterializedView.projection_of(
                view_name_for("snap_01"), halos_table, ["pid", "halo"]
            )
        )
        choice = histogram_plan(catalog, "snap_01", set(range(60)))
        assert choice.source == "view"

    def test_index_excludes_unclustered(self, halos_table):
        catalog = Catalog()
        catalog.create_table(halos_table)
        catalog.create_hash_index("snap_01", "pid")
        # pid 50 is unclustered (halo -1): index path must drop it.
        choice = histogram_plan(catalog, "snap_01", {0, 50})
        counts = dict(choice.plan.materialize(CostMeter()))
        assert -1 not in counts

    def test_what_if_index_units(self, halos_table):
        catalog = Catalog()
        catalog.create_table(halos_table)
        units = what_if_index_units(catalog, "snap_01", expected_matches=10.0)
        assert units == pytest.approx(1 * 32.0 + 10.0 * 4.0)
