"""Tests for table statistics, the extra operators, and index-aware plans."""

from __future__ import annotations

import pytest

from repro import QueryError
from repro.db import Catalog, CostMeter, Schema, SeqScan, Table
from repro.db.extra_operators import (
    Distinct,
    GroupAggregate,
    Limit,
    Sort,
    top_k,
)
from repro.db.planner import histogram_plan, members_plan, what_if_index_units
from repro.db.stats import analyze


@pytest.fixture()
def halos_table():
    table = Table("snap_01", Schema.of(
        pid="int", x="float", y="float", z="float",
        vx="float", vy="float", vz="float", mass="float", halo="int",
    ))
    for pid in range(60):
        halo = pid % 3 if pid < 45 else -1
        table.insert((pid, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, float(pid), halo))
    return table


class TestAnalyze:
    def test_row_count_and_width(self, halos_table):
        stats = analyze(halos_table)
        assert stats.row_count == 60
        assert stats.row_width == 72
        assert stats.estimated_scan_bytes() == 60 * 72

    def test_distinct_counts(self, halos_table):
        stats = analyze(halos_table)
        assert stats.column("pid").distinct == 60
        assert stats.column("halo").distinct == 4  # 0, 1, 2, -1

    def test_min_max(self, halos_table):
        stats = analyze(halos_table)
        assert stats.column("mass").minimum == 0.0
        assert stats.column("mass").maximum == 59.0

    def test_eq_selectivity(self, halos_table):
        stats = analyze(halos_table)
        assert stats.column("halo").eq_selectivity() == pytest.approx(0.25)
        assert stats.estimated_rows_eq("halo") == pytest.approx(15.0)

    def test_range_selectivity(self, halos_table):
        stats = analyze(halos_table)
        mass = stats.column("mass")
        assert mass.range_selectivity(0.0, 59.0) == pytest.approx(1.0)
        assert mass.range_selectivity(0.0, 29.5) == pytest.approx(0.5)
        assert mass.range_selectivity(100.0, 200.0) == 0.0
        assert mass.range_selectivity(None, None) == pytest.approx(1.0)

    def test_unknown_column(self, halos_table):
        stats = analyze(halos_table)
        with pytest.raises(QueryError):
            stats.column("ghost")


@pytest.fixture()
def small_table():
    table = Table("t", Schema.of(k="int", v="float"))
    table.extend([(2, 10.0), (1, 5.0), (2, 30.0), (3, 1.0), (1, 5.0)])
    return table


class TestExtraOperators:
    def test_sort_ascending_descending(self, small_table):
        meter = CostMeter()
        rows = Sort(SeqScan(small_table), "v").materialize(meter)
        assert [r[1] for r in rows] == [1.0, 5.0, 5.0, 10.0, 30.0]
        rows = Sort(SeqScan(small_table), "v", descending=True).materialize(meter)
        assert rows[0][1] == 30.0
        assert meter.build_bytes > 0

    def test_limit(self, small_table):
        meter = CostMeter()
        rows = Limit(SeqScan(small_table), 2).materialize(meter)
        assert len(rows) == 2
        assert Limit(SeqScan(small_table), 0).materialize(meter) == []
        with pytest.raises(QueryError):
            Limit(SeqScan(small_table), -1)

    def test_distinct(self, small_table):
        meter = CostMeter()
        rows = Distinct(SeqScan(small_table)).materialize(meter)
        assert len(rows) == 4  # (1, 5.0) deduplicated

    def test_top_k(self, small_table):
        meter = CostMeter()
        rows = top_k(SeqScan(small_table), "v", 2).materialize(meter)
        assert [r[1] for r in rows] == [30.0, 10.0]

    @pytest.mark.parametrize(
        "aggregate,expected",
        [
            ("count", {1: 2, 2: 2, 3: 1}),
            ("sum", {1: 10.0, 2: 40.0, 3: 1.0}),
            ("min", {1: 5.0, 2: 10.0, 3: 1.0}),
            ("max", {1: 5.0, 2: 30.0, 3: 1.0}),
            ("avg", {1: 5.0, 2: 20.0, 3: 1.0}),
        ],
    )
    def test_group_aggregate(self, small_table, aggregate, expected):
        meter = CostMeter()
        plan = GroupAggregate(SeqScan(small_table), "k", "v", aggregate)
        assert dict(plan.materialize(meter)) == expected

    def test_group_aggregate_schema(self, small_table):
        plan = GroupAggregate(SeqScan(small_table), "k", "v", "sum")
        assert plan.schema.names == ("k", "sum")

    def test_unknown_aggregate(self, small_table):
        with pytest.raises(QueryError):
            GroupAggregate(SeqScan(small_table), "k", "v", "median")


class TestIndexAwarePlans:
    def test_members_plan_prefers_halo_index(self, halos_table):
        catalog = Catalog()
        catalog.create_table(halos_table)
        baseline = members_plan(catalog, "snap_01", 1)
        assert baseline.source == "base"
        catalog.create_hash_index("snap_01", "halo")
        indexed = members_plan(catalog, "snap_01", 1)
        assert indexed.source == "index"
        # Same result either way.
        base_rows = sorted(baseline.plan.materialize(CostMeter()))
        index_rows = sorted(indexed.plan.materialize(CostMeter()))
        assert base_rows == index_rows

    def test_members_index_is_cheaper(self, halos_table):
        catalog = Catalog()
        catalog.create_table(halos_table)
        from repro.db.costmodel import CostModel

        model = CostModel()
        scan_meter = CostMeter()
        members_plan(catalog, "snap_01", 1).plan.materialize(scan_meter)
        catalog.create_hash_index("snap_01", "halo")
        index_meter = CostMeter()
        members_plan(catalog, "snap_01", 1).plan.materialize(index_meter)
        assert model.units(index_meter) < model.units(scan_meter)

    def test_histogram_plan_prefers_pid_index_for_small_sets(self, halos_table):
        catalog = Catalog()
        catalog.create_table(halos_table)
        catalog.create_hash_index("snap_01", "pid")
        pids = {0, 1, 2, 3}
        choice = histogram_plan(catalog, "snap_01", pids)
        assert choice.source == "index"
        baseline = Catalog()
        baseline.create_table(halos_table)
        base_choice = histogram_plan(baseline, "snap_01", pids)
        assert sorted(choice.plan.materialize(CostMeter())) == sorted(
            base_choice.plan.materialize(CostMeter())
        )

    def test_histogram_falls_back_for_huge_probe_sets(self, halos_table):
        catalog = Catalog()
        catalog.create_table(halos_table)
        catalog.create_hash_index("snap_01", "pid")
        # Probing 60 pids costs 60 probes * 32 + emits; the narrow scan is
        # 60 * 72 = 4320 units — still pricier, so make the probe set big
        # relative to a *view*: with the view the scan is 60*16 = 960 < the
        # index estimate for 60 probes (60*32 + 60*4 = 2160).
        from repro.db import MaterializedView
        from repro.db.planner import view_name_for

        catalog.create_view(
            MaterializedView.projection_of(
                view_name_for("snap_01"), halos_table, ["pid", "halo"]
            )
        )
        choice = histogram_plan(catalog, "snap_01", set(range(60)))
        assert choice.source == "view"

    def test_index_excludes_unclustered(self, halos_table):
        catalog = Catalog()
        catalog.create_table(halos_table)
        catalog.create_hash_index("snap_01", "pid")
        # pid 50 is unclustered (halo -1): index path must drop it.
        choice = histogram_plan(catalog, "snap_01", {0, 50})
        counts = dict(choice.plan.materialize(CostMeter()))
        assert -1 not in counts

    def test_what_if_index_units(self, halos_table):
        catalog = Catalog()
        catalog.create_table(halos_table)
        units = what_if_index_units(catalog, "snap_01", expected_matches=10.0)
        assert units == pytest.approx(1 * 32.0 + 10.0 * 4.0)


class TestSelectivityEdges:
    """Satellite coverage: degenerate statistics the estimators lean on."""

    def test_empty_table_behaves_like_all_null_columns(self):
        stats = analyze(Table("empty", Schema.of(a="int", b="float")))
        assert stats.row_count == 0
        for name in ("a", "b"):
            column = stats.column(name)
            assert column.distinct == 0
            assert column.minimum is None and column.maximum is None
            assert column.eq_selectivity() == 0.0
            # No numeric bounds: the System-R 1/3 default.
            assert column.range_selectivity(0, 10) == pytest.approx(1 / 3)
        assert stats.estimated_rows_eq("a") == 0.0

    def test_single_value_column(self):
        table = Table("const", Schema.of(v="int"))
        table.extend([(5,)] * 8)
        column = analyze(table).column("v")
        assert column.distinct == 1
        assert column.eq_selectivity() == 1.0
        assert column.range_selectivity(0, 10) == 1.0     # value inside
        assert column.range_selectivity(5, 5) == 1.0      # exactly the value
        assert column.range_selectivity(6, 10) == 0.0     # entirely above
        assert column.range_selectivity(0, 4) == 0.0      # entirely below
        assert column.range_selectivity(None, None) == 1.0

    def test_range_predicates_crossing_min_max_are_clamped(self, halos_table):
        mass = analyze(halos_table).column("mass")  # spans 0.0 .. 59.0
        # Bounds beyond the observed range clamp to it.
        assert mass.range_selectivity(-100.0, 29.5) == pytest.approx(
            mass.range_selectivity(0.0, 29.5)
        )
        assert mass.range_selectivity(29.5, 1000.0) == pytest.approx(
            mass.range_selectivity(29.5, 59.0)
        )
        assert mass.range_selectivity(-100.0, 1000.0) == pytest.approx(1.0)
        # One-sided ranges clamp the open side.
        assert mass.range_selectivity(None, 29.5) == pytest.approx(0.5)
        assert mass.range_selectivity(29.5, None) == pytest.approx(0.5)

    def test_analyze_column_subset(self, halos_table):
        stats = analyze(halos_table, ["pid", "halo"])
        assert set(stats.columns) == {"pid", "halo"}
        with pytest.raises(QueryError):
            stats.column("mass")  # not analyzed

    def test_analyze_unknown_column_names_table(self, halos_table):
        with pytest.raises(QueryError, match="snap_01"):
            analyze(halos_table, ["ghost"])


class TestPlannerTieBreaking:
    """On an exact estimate tie the scan-shaped source must win."""

    @staticmethod
    def _histogram_fixture():
        # 20 rows, every row clustered, each pid appearing exactly twice:
        # the (pid, halo) view scans 20 * 16 = 320 units; probing k pids
        # estimates k * 32 + k * (20 / 10) * 4 units — exactly 320 at
        # k = 8, strictly less at k = 7.
        catalog = Catalog()
        table = Table("snap_01", Schema.of(
            pid="int", x="float", y="float", z="float",
            vx="float", vy="float", vz="float", mass="float", halo="int",
        ))
        for i in range(20):
            table.insert((i // 2, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, i % 3))
        catalog.create_table(table)
        catalog.create_hash_index("snap_01", "pid")
        catalog.analyze_table("snap_01", ["pid"])
        from repro.db import MaterializedView
        from repro.db.planner import view_name_for

        catalog.create_view(
            MaterializedView.projection_of(
                view_name_for("snap_01"), table, ["pid", "halo"]
            )
        )
        return catalog

    def test_histogram_tie_prefers_view(self):
        catalog = self._histogram_fixture()
        tie = histogram_plan(catalog, "snap_01", set(range(8)))
        assert tie.source == "view", "equal estimates must break toward the view"
        cheaper = histogram_plan(catalog, "snap_01", set(range(7)))
        assert cheaper.source == "index"

    def test_members_tie_prefers_view(self):
        # 24 rows, 5 clustered in halo 7: the view scans 5 * 16 = 80
        # units; the stats-driven index estimate is 32 + (24 / 2) * 4 =
        # 80 — an exact tie, so the view must win.
        catalog = Catalog()
        table = Table("snap_01", Schema.of(
            pid="int", x="float", y="float", z="float",
            vx="float", vy="float", vz="float", mass="float", halo="int",
        ))
        for i in range(24):
            halo = 7 if i < 5 else -1
            table.insert((i, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, halo))
        catalog.create_table(table)
        catalog.create_hash_index("snap_01", "halo")
        catalog.analyze_table("snap_01", ["halo"])
        from repro.db.expr import Col, Const, Ne
        from repro.db.operators import Filter, Project, SeqScan
        from repro.db import MaterializedView
        from repro.db.planner import view_name_for

        catalog.create_view(
            MaterializedView(
                view_name_for("snap_01"),
                lambda: Project(
                    Filter(SeqScan(table), Ne(Col("halo"), Const(-1))),
                    ["pid", "halo"],
                ),
            )
        )
        tie = members_plan(catalog, "snap_01", 7)
        assert tie.source == "view", "equal estimates must break toward the view"
        # Both paths agree on the rows regardless of the tie-break.
        rows = sorted(tie.plan.materialize(CostMeter()))
        no_view = Catalog()
        no_view.create_table(table)
        base_rows = sorted(
            members_plan(no_view, "snap_01", 7).plan.materialize(CostMeter())
        )
        assert rows == base_rows
