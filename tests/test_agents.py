"""Tests for the strategic agents: truth vs the paper's manipulations."""

from __future__ import annotations

import pytest

from repro import AdditiveBid, GameConfigError, SubstitutableBid, run_addon, run_subston
from repro.agents import (
    OverBidder,
    SetLiar,
    SybilSplitter,
    TimeShifter,
    TruthfulAdditive,
    TruthfulSubstitutable,
    UnderBidder,
)


def play_additive(cost, agents, horizon):
    """Run AddOn on whatever the agents declare; return utilities by agent."""
    bids = {}
    for agent in agents:
        bids.update(agent.declarations())
    outcome = run_addon(cost, bids, horizon=horizon)
    return {agent.user: agent.utility(outcome) for agent in agents}


class TestDeclarations:
    TRUTH = AdditiveBid.over(1, [10.0, 20.0])

    def test_truthful(self):
        agent = TruthfulAdditive("u", self.TRUTH)
        assert agent.declarations() == {"u": self.TRUTH}

    def test_underbidder_scales_down(self):
        declared = UnderBidder("u", self.TRUTH, factor=0.5).declarations()["u"]
        assert declared.schedule.values == (5.0, 10.0)

    def test_overbidder_scales_up(self):
        declared = OverBidder("u", self.TRUTH, factor=2.0).declarations()["u"]
        assert declared.schedule.values == (20.0, 40.0)

    def test_time_shifter_hides_prefix(self):
        declared = TimeShifter("u", self.TRUTH, delay=1).declarations()["u"]
        assert declared.start == 2
        assert declared.schedule.values == (20.0,)

    def test_sybil_identities(self):
        declared = SybilSplitter("u", self.TRUTH, identities=3).declarations()
        assert set(declared) == {"u#1", "u#2", "u#3"}

    def test_set_liar(self):
        truth = SubstitutableBid.single_slot(1, 5.0, {"a"})
        declared = SetLiar("u", truth, {"b"}).declarations()["u"]
        assert declared.substitutes == frozenset({"b"})

    def test_validation(self):
        with pytest.raises(GameConfigError):
            UnderBidder("u", self.TRUTH, factor=1.0)
        with pytest.raises(GameConfigError):
            OverBidder("u", self.TRUTH, factor=0.9)
        with pytest.raises(GameConfigError):
            TimeShifter("u", self.TRUTH, delay=2)
        with pytest.raises(GameConfigError):
            SybilSplitter("u", self.TRUTH, identities=1)


class TestStrategiesAgainstAddOn:
    """No-future games: every manipulation does at most as well as truth."""

    COST = 100.0
    OTHERS = [
        TruthfulAdditive("o1", AdditiveBid.over(1, [60.0])),
        TruthfulAdditive("o2", AdditiveBid.over(1, [45.0, 15.0])),
    ]
    TRUTH = AdditiveBid.over(1, [30.0, 25.0])

    def baseline(self):
        agents = self.OTHERS + [TruthfulAdditive("me", self.TRUTH)]
        return play_additive(self.COST, agents, horizon=2)["me"]

    def test_truthful_baseline_positive(self):
        # Shares of 33.3 fit all three: utility 55 - 33.3 > 0.
        assert self.baseline() == pytest.approx(55.0 - 100.0 / 3.0)

    @pytest.mark.parametrize("factor", [0.1, 0.4, 0.6])
    def test_underbidding_never_beats_truth(self, factor):
        agents = self.OTHERS + [UnderBidder("me", self.TRUTH, factor=factor)]
        utility = play_additive(self.COST, agents, horizon=2)["me"]
        assert utility <= self.baseline() + 1e-9

    @pytest.mark.parametrize("factor", [1.5, 3.0, 10.0])
    def test_overbidding_never_beats_truth(self, factor):
        agents = self.OTHERS + [OverBidder("me", self.TRUTH, factor=factor)]
        utility = play_additive(self.COST, agents, horizon=2)["me"]
        assert utility <= self.baseline() + 1e-9

    def test_time_shifting_never_beats_truth(self):
        agents = self.OTHERS + [TimeShifter("me", self.TRUTH, delay=1)]
        utility = play_additive(self.COST, agents, horizon=2)["me"]
        assert utility <= self.baseline() + 1e-9

    def test_free_riding_blocked(self):
        """Example 2 as an agent play: hiding slot-1 value wins nothing."""
        others = [TruthfulAdditive("rich", AdditiveBid.over(1, [101.0]))]
        truth = AdditiveBid.over(1, [26.0, 26.0])
        honest = play_additive(
            100.0, others + [TruthfulAdditive("me", truth)], horizon=2
        )["me"]
        shifted = play_additive(
            100.0, others + [TimeShifter("me", truth, delay=1)], horizon=2
        )["me"]
        assert honest == pytest.approx(2.0)
        assert shifted == pytest.approx(0.0)


class TestSybilPlays:
    def test_alice_gains_but_no_one_loses(self):
        """Section 5.2's Alice example via agents."""
        cost = 101.0
        honest_agents = [
            TruthfulAdditive(f"u{k}", AdditiveBid.single_slot(1, 1.0))
            for k in range(99)
        ]
        alice_truth = AdditiveBid.single_slot(1, 101.0)

        solo = honest_agents + [TruthfulAdditive("alice", alice_truth)]
        solo_utils = play_additive(cost, solo, horizon=1)
        assert solo_utils["alice"] == pytest.approx(0.0)

        sybil = honest_agents + [SybilSplitter("alice", alice_truth, identities=2)]
        sybil_utils = play_additive(cost, sybil, horizon=1)
        assert sybil_utils["alice"] == pytest.approx(99.0)
        # Proposition 2: no honest user is worse off.
        for k in range(99):
            assert sybil_utils[f"u{k}"] >= solo_utils[f"u{k}"] - 1e-9


class TestSubstitutableAgents:
    def test_set_lie_can_only_hurt(self):
        """Example 7 as an agent play."""
        costs = {1: 60.0, 2: 180.0, 3: 100.0}
        agents = [
            TruthfulSubstitutable(1, SubstitutableBid.single_slot(1, 100.0, {1, 2})),
            TruthfulSubstitutable(2, SubstitutableBid.single_slot(1, 101.0, {3})),
            TruthfulSubstitutable(4, SubstitutableBid.single_slot(1, 70.0, {2})),
        ]
        truth_3 = SubstitutableBid.single_slot(1, 60.0, {1, 2, 3})

        def play(agent_3):
            bids = {}
            for agent in agents + [agent_3]:
                bids.update(agent.declarations())
            outcome = run_subston(costs, bids, horizon=1)
            return agent_3.utility(outcome)

        honest = play(TruthfulSubstitutable(3, truth_3))
        lied = play(SetLiar(3, truth_3, {2, 3}))
        assert honest == pytest.approx(30.0)
        assert lied < honest


class TestSubstitutableSybil:
    """Section 6's dummy-user example through the agent API."""

    COSTS = {1: 6.0, 2: 5.0}

    def play(self, agents):
        from repro import run_subston

        bids = {}
        for agent in agents:
            bids.update(agent.declarations())
        outcome = run_subston(self.COSTS, bids, horizon=1)
        return outcome, {agent.user: agent.utility(outcome) for agent in agents}

    def test_sybil_steers_outcome_and_hurts_user_3(self):
        from repro.agents import SubstitutableSybil

        truth_1 = SubstitutableBid.single_slot(1, 5.0, {1})
        agent_2 = TruthfulSubstitutable(2, SubstitutableBid.single_slot(1, 2.51, {1, 2}))
        agent_3 = TruthfulSubstitutable(3, SubstitutableBid.single_slot(1, 7.0, {2}))

        honest = [TruthfulSubstitutable(1, truth_1), agent_2, agent_3]
        _, honest_utils = self.play(honest)
        assert honest_utils[3] == pytest.approx(4.5)
        assert honest_utils[1] == pytest.approx(0.0)  # opt 1 never built

        sybil = [SubstitutableSybil(1, truth_1, identities=2), agent_2, agent_3]
        outcome, sybil_utils = self.play(sybil)
        # Optimization 1 now wins phase 1 at share 2; user 1 nets 5 - 4 = 1
        # while user 3 is left covering optimization 2 alone: 7 - 5 = 2.
        assert outcome.grants["1#1"] == 1
        assert sybil_utils[1] == pytest.approx(1.0)
        assert sybil_utils[3] == pytest.approx(2.0)
        assert sybil_utils[3] < honest_utils[3]

    def test_validation(self):
        from repro.agents import SubstitutableSybil

        truth = SubstitutableBid.single_slot(1, 5.0, {1})
        with pytest.raises(GameConfigError):
            SubstitutableSybil(1, truth, identities=1)
