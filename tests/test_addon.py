"""Unit tests for AddOn (Mechanism 2) beyond the paper's worked examples."""

from __future__ import annotations

import pytest

from repro import AdditiveBid, MechanismError, RevisableBid, run_addon
from repro.core import accounting


class TestBasics:
    def test_never_affordable(self):
        bids = {1: AdditiveBid.over(1, [1.0, 1.0]), 2: AdditiveBid.single_slot(2, 3.0)}
        outcome = run_addon(100.0, bids)
        assert not outcome.implemented
        assert outcome.total_payment == 0.0
        assert accounting.addon_total_utility(outcome, bids) == 0.0

    def test_single_user_covers_cost(self):
        bids = {1: AdditiveBid.over(1, [60.0, 60.0])}
        outcome = run_addon(100.0, bids)
        assert outcome.implemented_at == 1
        assert outcome.payment(1) == pytest.approx(100.0)
        assert accounting.addon_user_utility(outcome, 1, bids[1]) == pytest.approx(20.0)

    def test_residual_triggers_late_implementation(self):
        # Alone, user 1's residual never covers 100; with user 2 at t=2 the
        # combined residuals do (50 + 70 against shares of 50).
        bids = {
            1: AdditiveBid.over(1, [30.0, 50.0]),
            2: AdditiveBid.over(2, [70.0]),
        }
        outcome = run_addon(100.0, bids)
        assert outcome.implemented_at == 2
        assert outcome.cumulative(1) == frozenset()
        assert outcome.cumulative(2) == frozenset({1, 2})
        assert outcome.payment(1) == pytest.approx(50.0)
        assert outcome.payment(2) == pytest.approx(50.0)

    def test_value_before_implementation_is_lost(self):
        bids = {
            1: AdditiveBid.over(1, [30.0, 50.0]),
            2: AdditiveBid.over(2, [70.0]),
        }
        outcome = run_addon(100.0, bids)
        # User 1 is serviced only at slot 2: realized 50, not 80.
        assert accounting.addon_realized_value(outcome, 1, bids[1]) == pytest.approx(50.0)

    def test_price_decreases_as_users_join(self):
        bids = {
            1: AdditiveBid.single_slot(1, 100.0),
            2: AdditiveBid.single_slot(2, 50.0),
            3: AdditiveBid.single_slot(3, 40.0),
        }
        outcome = run_addon(100.0, bids, horizon=3)
        prices = outcome.price_by_slot
        assert prices[1] == pytest.approx(100.0)
        assert prices[2] == pytest.approx(50.0)
        assert prices[3] == pytest.approx(100.0 / 3.0)
        # Each user pays the share current at her own departure slot.
        assert outcome.payment(1) == pytest.approx(100.0)
        assert outcome.payment(2) == pytest.approx(50.0)
        assert outcome.payment(3) == pytest.approx(100.0 / 3.0)

    def test_departed_users_stay_in_cumulative_set(self):
        bids = {
            1: AdditiveBid.over(1, [100.0]),
            2: AdditiveBid.over(2, [60.0]),
        }
        outcome = run_addon(100.0, bids)
        assert 1 in outcome.cumulative(2)
        assert 1 not in outcome.serviced(2)  # no longer active

    def test_horizon_defaults_to_last_departure(self):
        bids = {1: AdditiveBid.over(2, [5.0, 5.0, 5.0])}
        outcome = run_addon(10.0, bids)
        assert outcome.horizon == 4

    def test_explicit_horizon_beyond_departures(self):
        bids = {1: AdditiveBid.over(1, [20.0])}
        outcome = run_addon(10.0, bids, horizon=5)
        assert outcome.serviced(1) == frozenset({1})
        assert outcome.serviced(3) == frozenset()
        assert outcome.payment(1) == pytest.approx(10.0)

    def test_empty_game(self):
        outcome = run_addon(10.0, {}, horizon=3)
        assert not outcome.implemented
        assert outcome.total_cost == 0.0

    def test_invalid_cost(self):
        with pytest.raises(MechanismError):
            run_addon(0.0, {1: AdditiveBid.single_slot(1, 5.0)})


class TestRevisions:
    def test_upward_revision_can_trigger_implementation(self):
        bid = RevisableBid(AdditiveBid.over(1, [30.0, 30.0]))
        outcome_before = run_addon(100.0, {1: bid}, horizon=2)
        assert not outcome_before.implemented
        bid.revise(2, {2: 80.0})
        outcome = run_addon(100.0, {1: bid}, horizon=2)
        # As of slot 1 the cloud still sees [30, 30]: no implementation; the
        # slot-2 view has residual 80 < 100 — still unaffordable.
        assert not outcome.implemented
        bid.revise(2, {2: 120.0})
        outcome = run_addon(100.0, {1: bid}, horizon=2)
        assert outcome.implemented_at == 2
        assert outcome.payment(1) == pytest.approx(100.0)

    def test_extension_delays_payment(self):
        bid = RevisableBid(AdditiveBid.over(1, [120.0]))
        bid.revise(1, {2: 10.0})  # extends e_i to 2 before slot 1 closes
        outcome = run_addon(100.0, {1: bid}, horizon=2)
        assert outcome.implemented_at == 1
        # She leaves at t=2 now; payment recorded then.
        assert outcome.payment(1) == pytest.approx(100.0)
        assert outcome.serviced(2) == frozenset({1})

    def test_early_declaration_is_pruned_until_interval_starts(self):
        # Declared at slot 1, but s_i = 2: Mechanism 2 prunes users with
        # t < s_i, so implementation waits for slot 2.
        bid = RevisableBid(AdditiveBid.over(2, [200.0]), declared_at=1)
        outcome = run_addon(100.0, {1: bid}, horizon=2)
        assert outcome.implemented_at == 2
        assert outcome.payment(1) == pytest.approx(100.0)


class TestAccountingAgainstLies:
    def test_time_shift_lie_loses_value(self):
        """Declaring a later interval than the truth forfeits early value."""
        truth = AdditiveBid.over(1, [50.0, 50.0])
        declared = AdditiveBid.over(2, [50.0])
        outcome = run_addon(80.0, {1: declared, 2: AdditiveBid.over(1, [90.0, 0.0])})
        realized = accounting.addon_realized_value(outcome, 1, truth)
        # She is serviced at slot 2 only: realizes 50 instead of 100.
        assert realized == pytest.approx(50.0)
