"""Property-based tests for the database engine and the halo finder."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.astro.halos import friends_of_friends
from repro.db import (
    And,
    Catalog,
    Col,
    Const,
    CostMeter,
    Distinct,
    Eq,
    Filter,
    GroupCount,
    HashIndex,
    In,
    IndexLookup,
    MaterializedView,
    Project,
    Schema,
    SeqScan,
    Sort,
    Table,
    analyze,
)

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),   # pid-ish key
        st.integers(min_value=-1, max_value=5),   # halo-ish group
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    ),
    max_size=40,
)


def make_table(rows) -> Table:
    table = Table("t", Schema.of(k="int", g="int", v="float"))
    table.extend(rows)
    return table


class TestOperatorAlgebra:
    @given(rows=rows_strategy, a=st.integers(-1, 5), b=st.integers(0, 30))
    @settings(max_examples=150)
    def test_filter_composition_equals_conjunction(self, rows, a, b):
        table = make_table(rows)
        stacked = Filter(
            Filter(SeqScan(table), Eq(Col("g"), Const(a))),
            Eq(Col("k"), Const(b)),
        ).materialize(CostMeter())
        conjoined = Filter(
            SeqScan(table),
            And(Eq(Col("g"), Const(a)), Eq(Col("k"), Const(b))),
        ).materialize(CostMeter())
        assert stacked == conjoined

    @given(rows=rows_strategy, keys=st.sets(st.integers(0, 30), max_size=10))
    @settings(max_examples=150)
    def test_index_lookup_equals_scan_filter(self, rows, keys):
        table = make_table(rows)
        index = HashIndex(table, "k")
        via_index = sorted(
            IndexLookup(index, sorted(keys)).materialize(CostMeter())
        )
        via_scan = sorted(
            Filter(SeqScan(table), In(Col("k"), keys)).materialize(CostMeter())
        )
        assert via_index == via_scan

    @given(rows=rows_strategy)
    @settings(max_examples=150)
    def test_projection_view_equals_projected_scan(self, rows):
        table = make_table(rows)
        view = MaterializedView.projection_of("v", table, ["k", "g"])
        view.refresh()
        via_view = SeqScan(view.table).materialize(CostMeter())
        via_scan = Project(SeqScan(table), ["k", "g"]).materialize(CostMeter())
        assert via_view == via_scan

    @given(rows=rows_strategy)
    @settings(max_examples=150)
    def test_group_count_totals(self, rows):
        table = make_table(rows)
        counts = dict(GroupCount(SeqScan(table), "g").materialize(CostMeter()))
        assert sum(counts.values()) == len(table)
        for group, count in counts.items():
            assert count == sum(1 for r in rows if r[1] == group)

    @given(rows=rows_strategy)
    @settings(max_examples=100)
    def test_sort_is_permutation_and_ordered(self, rows):
        table = make_table(rows)
        ordered = Sort(SeqScan(table), "v").materialize(CostMeter())
        assert sorted(ordered) == sorted(table.rows())
        values = [r[2] for r in ordered]
        assert values == sorted(values)

    @given(rows=rows_strategy)
    @settings(max_examples=100)
    def test_distinct_idempotent(self, rows):
        table = make_table(rows)
        once = Distinct(SeqScan(table)).materialize(CostMeter())
        assert len(set(once)) == len(once)
        assert set(once) == set(table.rows())

    @given(rows=rows_strategy)
    @settings(max_examples=100)
    def test_analyze_consistency(self, rows):
        table = make_table(rows)
        stats = analyze(table)
        assert stats.row_count == len(rows)
        if rows:
            assert stats.column("k").distinct == len({r[0] for r in rows})
            assert stats.column("v").minimum == min(r[2] for r in rows)
            assert stats.column("v").maximum == max(r[2] for r in rows)
            assert 0 < stats.column("g").eq_selectivity() <= 1.0


class TestFriendsOfFriendsProperties:
    positions_strategy = st.lists(
        st.tuples(
            st.floats(0.0, 50.0, allow_nan=False),
            st.floats(0.0, 50.0, allow_nan=False),
            st.floats(0.0, 50.0, allow_nan=False),
        ),
        max_size=60,
    )

    @given(points=positions_strategy, link=st.floats(0.5, 5.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_labels_partition_points(self, points, link):
        positions = np.asarray(points, dtype=float).reshape(-1, 3)
        labels = friends_of_friends(positions, link, min_members=2)
        assert len(labels) == len(points)
        assert all(l >= -1 for l in labels)

    @given(points=positions_strategy, link=st.floats(0.5, 3.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_linking_length_monotone_in_cluster_count(self, points, link):
        """Growing the linking length can only merge clusters (never split)."""
        positions = np.asarray(points, dtype=float).reshape(-1, 3)
        small = friends_of_friends(positions, link, min_members=1)
        large = friends_of_friends(positions, link * 2.0, min_members=1)
        n_small = len({l for l in small.tolist() if l >= 0})
        n_large = len({l for l in large.tolist() if l >= 0})
        assert n_large <= n_small

    @given(points=positions_strategy, link=st.floats(0.5, 3.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_friends_share_labels(self, points, link):
        """Any two points within the linking length share a component."""
        positions = np.asarray(points, dtype=float).reshape(-1, 3)
        labels = friends_of_friends(positions, link, min_members=1)
        n = len(positions)
        for a in range(min(n, 15)):
            for b in range(a + 1, min(n, 15)):
                if np.linalg.norm(positions[a] - positions[b]) <= link:
                    assert labels[a] == labels[b]

    @given(points=positions_strategy)
    @settings(max_examples=40, deadline=None)
    def test_min_members_monotone(self, points):
        """Raising min_members can only unlabel points."""
        positions = np.asarray(points, dtype=float).reshape(-1, 3)
        loose = friends_of_friends(positions, 2.0, min_members=1)
        strict = friends_of_friends(positions, 2.0, min_members=4)
        clustered_loose = {i for i, l in enumerate(loose.tolist()) if l >= 0}
        clustered_strict = {i for i, l in enumerate(strict.tolist()) if l >= 0}
        assert clustered_strict <= clustered_loose


class TestCatalogInvariants:
    @given(rows=rows_strategy)
    @settings(max_examples=60)
    def test_view_refresh_tracks_base(self, rows):
        table = make_table(rows)
        catalog = Catalog()
        catalog.create_table(table)
        view = MaterializedView.projection_of("v", table, ["k"])
        catalog.create_view(view)
        assert len(view.table) == len(table)
        table.insert((99, 0, 1.0))
        view.refresh()
        assert len(view.table) == len(table)
