"""Integration tests: every figure driver runs and matches the paper's shape.

Reduced trial counts keep these fast; the benchmark harnesses run the
paper-scale versions. Shape assertions encode the qualitative claims of
Section 7 (the quantities the paper derives from its figures).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GameConfigError
from repro.experiments import (
    Fig1Config,
    Fig2AdditiveConfig,
    Fig2SubstitutiveConfig,
    Fig3aConfig,
    Fig3bConfig,
    Fig4Config,
    Fig5Config,
    Series,
    format_result,
    format_summary,
    run_fig1_astronomy,
    run_fig2_additive,
    run_fig2_substitutive,
    run_fig3a_slot_count,
    run_fig3b_duration,
    run_fig4_skew,
    run_fig5_selectivity,
)
from repro.experiments.common import average_trials, cost_grid


class TestCommon:
    def test_series_validation(self):
        with pytest.raises(GameConfigError):
            Series("s", (1, 2), (1.0,))
        with pytest.raises(GameConfigError):
            Series("s", (1,), (1.0,), std=(0.0, 0.0))

    def test_series_accessors(self):
        s = Series("s", (1, 2, 3), (10.0, 20.0, 30.0))
        assert s.at(2) == 20.0
        assert s.mean() == pytest.approx(20.0)

    def test_result_get(self):
        from repro.experiments import ExperimentResult

        s = Series("a", (1,), (0.0,))
        result = ExperimentResult("e", "x", "y", (s,))
        assert result.get("a") is s
        assert result.names == ["a"]
        from repro import GameConfigError
        with pytest.raises(GameConfigError):
            result.get("zzz")

    def test_cost_grid(self):
        grid = cost_grid(0.03, 0.15, 0.06)
        assert grid == (0.03, 0.09, 0.15)
        with pytest.raises(GameConfigError):
            cost_grid(0.0, 1.0, 0.0)

    def test_average_trials_deterministic(self):
        trial = lambda rng: np.array([rng.uniform(), 1.0])
        mean_a, std_a = average_trials(trial, 10, 42)
        mean_b, _ = average_trials(trial, 10, 42)
        assert np.allclose(mean_a, mean_b)
        assert mean_a[1] == pytest.approx(1.0)
        assert std_a[1] == pytest.approx(0.0)

    def test_average_trials_validation(self):
        with pytest.raises(GameConfigError):
            average_trials(lambda rng: np.zeros(1), 0, 1)


FAST_GRID = cost_grid(0.05, 2.45, 0.4)


class TestFig2Additive:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2_additive(
            Fig2AdditiveConfig(costs=FAST_GRID, trials=120, seed=7)
        )

    def test_series_names(self, result):
        assert result.names == ["AddOn Utility", "Regret Utility", "Regret Balance"]

    def test_addon_never_negative(self, result):
        assert min(result.get("AddOn Utility").y) >= -1e-9

    def test_regret_goes_negative_at_high_cost(self, result):
        regret = result.get("Regret Utility").y
        assert regret[-1] < 0
        balance = result.get("Regret Balance").y
        assert balance[-1] < 0

    def test_addon_beats_regret_in_small_collaborations(self, result):
        addon = result.get("AddOn Utility")
        regret = result.get("Regret Utility")
        assert all(a >= r - 1e-9 for a, r in zip(addon.y, regret.y))

    def test_utilities_decrease_with_cost(self, result):
        addon = result.get("AddOn Utility").y
        assert addon[0] > addon[-1]


class TestFig2Substitutive:
    def test_subston_beats_regret_and_stays_positive(self):
        result = run_fig2_substitutive(
            Fig2SubstitutiveConfig(mean_costs=FAST_GRID, trials=40, seed=7)
        )
        subston = result.get("SubstOn Utility").y
        regret = result.get("Regret Utility").y
        assert min(subston) >= -1e-9
        assert sum(subston) > sum(regret)

    def test_large_collaboration_scales_utility(self):
        small = run_fig2_substitutive(
            Fig2SubstitutiveConfig(mean_costs=(0.2,), trials=40, seed=7)
        )
        large = run_fig2_substitutive(
            Fig2SubstitutiveConfig.large(mean_costs=(0.2,), trials=40, seed=7)
        )
        assert large.get("SubstOn Utility").y[0] > small.get("SubstOn Utility").y[0]


class TestFig3:
    def test_gap_grows_with_overlap(self):
        result = run_fig3a_slot_count(
            Fig3aConfig(slot_counts=(2, 12), costs=FAST_GRID, trials=150, seed=7)
        )
        gap = result.get("AddOn minus Regret")
        # Fewer slots -> more overlap -> bigger AddOn advantage.
        assert gap.at(2) > gap.at(12)
        assert gap.at(12) > 0

    def test_gap_grows_with_duration(self):
        result = run_fig3b_duration(
            Fig3bConfig(durations=(1, 8), costs=FAST_GRID, trials=150, seed=7)
        )
        gap = result.get("AddOn minus Regret")
        assert gap.at(8) > gap.at(1) - 0.05  # allow trial noise on a weak trend
        assert gap.at(1) > 0


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4_skew(
            Fig4Config(costs=cost_grid(0.05, 1.65, 0.4), trials=150, seed=7)
        )

    def test_six_series(self, result):
        assert len(result.series) == 6
        assert "Early-AddOn" in result.names

    def test_early_addon_is_the_reference(self, result):
        early = result.get("Early-AddOn").y
        assert all(v == pytest.approx(1.0) for v in early)

    def test_addon_improves_with_skew(self, result):
        # At the highest cost, uniform arrivals are the worst for AddOn.
        uniform = result.get("Uniform-AddOn").y[-1]
        assert uniform < 1.0

    def test_regret_worsens_with_early_skew(self, result):
        early_regret = result.get("Early-Regret").y[-1]
        uniform_regret = result.get("Uniform-Regret").y[-1]
        assert early_regret < uniform_regret


class TestFig5:
    def test_selectivity_lowers_utility(self):
        grid = (0.4,)
        low = run_fig5_selectivity(
            Fig5Config(mean_costs=grid, trials=60, seed=7)
        )
        high = run_fig5_selectivity(
            Fig5Config.high_selectivity(mean_costs=grid, trials=60, seed=7)
        )
        # 3-of-12 (more selective users) yields less utility than 3-of-4.
        assert (
            high.get("SubstOn Utility").y[0] < low.get("SubstOn Utility").y[0]
        )

    def test_subston_sustains_higher_costs_than_regret(self):
        result = run_fig5_selectivity(
            Fig5Config(mean_costs=FAST_GRID, trials=60, seed=7)
        )
        subston = result.get("SubstOn Utility")
        regret = result.get("Regret Utility")
        # Where does each last clear a utility of 1.0?
        subston_reach = max(
            (x for x, y in zip(subston.x, subston.y) if y >= 1.0), default=0.0
        )
        regret_reach = max(
            (x for x, y in zip(regret.x, regret.y) if y >= 1.0), default=0.0
        )
        assert subston_reach > regret_reach


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig1_astronomy(
            Fig1Config(values="paper", samples=40, executions=(1, 30, 60, 90), seed=7)
        )

    def test_series(self, result):
        assert result.names == [
            "Baseline Cost",
            "AddOn Utility",
            "Regret Utility",
            "Regret Balance",
        ]

    def test_baseline_linear_in_executions(self, result):
        base = result.get("Baseline Cost")
        assert base.at(60) == pytest.approx(2 * base.at(30), rel=1e-6)

    def test_addon_positive_and_above_regret(self, result):
        addon = result.get("AddOn Utility").y
        regret = result.get("Regret Utility").y
        assert min(addon) >= -1e-9
        assert addon[-1] > regret[-1]

    def test_addon_within_published_band_at_high_usage(self, result):
        addon = result.get("AddOn Utility")
        base = result.get("Baseline Cost")
        ratio = addon.at(90) / base.at(90)
        # The paper reports 28%-47% of baseline; allow a generous band
        # around it for our reconstruction of their (internally
        # inconsistent) value table.
        assert 0.2 < ratio < 0.8

    def test_exhaustive_tiny_combo_space(self):
        # 2 quarters -> 3 intervals -> 3^6 = 729 combos; keep x tiny.
        result = run_fig1_astronomy(
            Fig1Config(
                values="paper", samples=None, quarters=2,
                slots_per_quarter=1, executions=(30,),
            )
        )
        assert result.get("Baseline Cost").y[0] > 0

    def test_invalid_config(self):
        with pytest.raises(GameConfigError):
            Fig1Config(values="guesswork")
        with pytest.raises(GameConfigError):
            Fig1Config(quarters=0)

    def test_engine_values_mode_on_small_use_case(self):
        from repro.astro import UniverseConfig, UseCaseConfig, build_use_case

        use_case = build_use_case(
            UseCaseConfig(
                universe=UniverseConfig(
                    particles=600, halos=10, snapshots=8, min_halo_members=6
                ),
                halos_per_group=2,
            )
        )
        result = run_fig1_astronomy(
            Fig1Config(values="engine", samples=20, executions=(30, 90), seed=7),
            use_case=use_case,
        )
        addon = result.get("AddOn Utility")
        assert min(addon.y) >= -1e-9
        assert addon.at(90) > 0
        # The engine values are self-consistent: utility below baseline.
        assert addon.at(90) < result.get("Baseline Cost").at(90)


class TestReporting:
    def test_format_result_contains_series(self):
        result = run_fig2_additive(
            Fig2AdditiveConfig(costs=(0.1, 0.5), trials=5, seed=1)
        )
        text = format_result(result)
        assert "AddOn Utility" in text
        assert "0.5" in text

    def test_format_result_thins_rows(self):
        result = run_fig2_additive(
            Fig2AdditiveConfig(costs=tuple(cost_grid(0.1, 2.0, 0.1)), trials=2, seed=1)
        )
        text = format_result(result, max_rows=5)
        data_lines = [l for l in text.splitlines() if l.startswith(("0", "1", "2"))]
        assert len(data_lines) <= 6

    def test_format_summary(self):
        result = run_fig2_additive(
            Fig2AdditiveConfig(costs=(0.1, 0.5), trials=5, seed=1)
        )
        text = format_summary(result)
        assert "mean" in text and "Regret Balance" in text
