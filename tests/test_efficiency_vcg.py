"""Tests for the efficient-outcome search and the VCG baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MechanismError, run_addoff, run_substoff
from repro.baseline.vcg import run_vcg_additive
from repro.core import accounting
from repro.core.efficiency import (
    efficiency_loss,
    efficient_additive,
    efficient_substitutable,
)

values = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)


class TestEfficientAdditive:
    def test_implements_when_values_cover_cost(self):
        outcome = efficient_additive(
            {"a": 100.0, "b": 100.0},
            {"a": {1: 60.0, 2: 50.0}, "b": {1: 40.0, 2: 30.0}},
        )
        assert outcome.implemented == frozenset({"a"})
        assert outcome.welfare == pytest.approx(10.0)
        assert outcome.serviced("a") == frozenset({1, 2})

    def test_grants_every_positive_value_user(self):
        # Even a 1-cent user is granted under the efficient outcome — the
        # whole point: Shapley excludes her to recover cost.
        outcome = efficient_additive(
            {"a": 10.0}, {"a": {1: 50.0, 2: 0.01, 3: 0.0}}
        )
        assert (2, "a") in outcome.grants
        assert (3, "a") not in outcome.grants

    def test_boundary_exact_cover(self):
        outcome = efficient_additive({"a": 10.0}, {"a": {1: 10.0}})
        assert outcome.implemented == frozenset({"a"})
        assert outcome.welfare == pytest.approx(0.0)

    def test_invalid_cost(self):
        with pytest.raises(MechanismError):
            efficient_additive({"a": 0.0}, {})

    @given(
        cost=st.floats(0.5, 100.0, allow_nan=False),
        bids=st.dictionaries(st.integers(0, 8), values, max_size=8),
    )
    @settings(max_examples=200)
    def test_dominates_addoff_welfare(self, cost, bids):
        """Shapley's welfare never exceeds the efficient optimum."""
        addoff = run_addoff({"a": cost}, {"a": bids})
        achieved = accounting.addoff_total_utility(addoff, {"a": bids})
        optimum = efficient_additive({"a": cost}, {"a": bids}).welfare
        assert achieved <= optimum + 1e-6
        assert efficiency_loss(achieved, optimum) >= -1e-9


class TestEfficientSubstitutable:
    def test_small_game(self):
        # Example 5's game: optimum builds {1, 3}: value 100+101+60 - 160.
        costs = {1: 60.0, 2: 180.0, 3: 100.0}
        bids = {
            1: {1: 100.0, 2: 100.0},
            2: {3: 101.0},
            3: {1: 60.0, 2: 60.0, 3: 60.0},
            4: {2: 70.0},
        }
        outcome = efficient_substitutable(costs, bids)
        assert outcome.implemented == frozenset({1, 3})
        assert outcome.welfare == pytest.approx(100.0 + 101.0 + 60.0 - 160.0)
        assert outcome.assignment[2] == 3

    def test_prefers_cheaper_cover(self):
        costs = {"x": 5.0, "y": 50.0}
        bids = {1: {"x": 10.0, "y": 10.0}, 2: {"x": 10.0, "y": 10.0}}
        outcome = efficient_substitutable(costs, bids)
        assert outcome.implemented == frozenset({"x"})

    def test_empty_optimum(self):
        outcome = efficient_substitutable({"x": 100.0}, {1: {"x": 5.0}})
        assert outcome.implemented == frozenset()
        assert outcome.welfare == 0.0
        assert outcome.assignment == {}

    def test_pool_size_cap(self):
        costs = {j: 1.0 for j in range(25)}
        with pytest.raises(MechanismError):
            efficient_substitutable(costs, {})

    @given(data=st.data())
    @settings(max_examples=100)
    def test_dominates_substoff_welfare(self, data):
        n_opts = data.draw(st.integers(1, 4))
        costs = {
            j: data.draw(st.floats(0.5, 40.0, allow_nan=False))
            for j in range(n_opts)
        }
        n_users = data.draw(st.integers(0, 6))
        bids = {}
        for i in range(n_users):
            subs = data.draw(
                st.sets(st.integers(0, n_opts - 1), min_size=1, max_size=n_opts)
            )
            value = data.draw(values)
            bids[i] = {j: value for j in subs}
        substoff = run_substoff(costs, bids)
        achieved = accounting.substoff_total_utility(substoff, bids)
        optimum = efficient_substitutable(costs, bids).welfare
        assert achieved <= optimum + 1e-6


class TestEfficiencyLoss:
    def test_zero_loss_at_optimum(self):
        assert efficiency_loss(10.0, 10.0) == 0.0

    def test_full_loss_at_zero(self):
        assert efficiency_loss(0.0, 10.0) == pytest.approx(1.0)

    def test_zero_optimum(self):
        assert efficiency_loss(0.0, 0.0) == 0.0

    def test_negative_achieved_clamps_to_over_one(self):
        assert efficiency_loss(-5.0, 10.0) == pytest.approx(1.5)

    def test_negative_optimum_rejected(self):
        with pytest.raises(MechanismError):
            efficiency_loss(0.0, -1.0)


class TestVcg:
    def test_efficient_and_pivotal(self):
        costs = {"a": 100.0}
        bids = {"a": {1: 60.0, 2: 50.0, 3: 40.0}}
        outcome = run_vcg_additive(costs, bids)
        assert outcome.implemented == frozenset({"a"})
        # Pivotal payments: p_1 = max(0, 100-90) = 10, p_2 = 0, p_3 = 0.
        assert outcome.payment(1) == pytest.approx(10.0)
        assert outcome.payment(2) == pytest.approx(0.0)
        assert outcome.payment(3) == pytest.approx(0.0)
        assert outcome.deficit == pytest.approx(90.0)

    def test_no_deficit_only_when_each_user_is_pivotal_for_everything(self):
        outcome = run_vcg_additive({"a": 10.0}, {"a": {1: 10.0}})
        assert outcome.payment(1) == pytest.approx(10.0)
        assert outcome.deficit == pytest.approx(0.0)

    def test_welfare_is_optimal(self):
        costs = {"a": 30.0, "b": 500.0}
        bids = {"a": {1: 20.0, 2: 20.0}, "b": {1: 10.0}}
        outcome = run_vcg_additive(costs, bids)
        optimum = efficient_additive(costs, bids)
        assert outcome.welfare == pytest.approx(optimum.welfare)

    @given(
        cost=st.floats(0.5, 100.0, allow_nan=False),
        bids=st.dictionaries(st.integers(0, 8), values, min_size=1, max_size=8),
        lie=values,
    )
    @settings(max_examples=200)
    def test_vcg_truthful(self, cost, bids, lie):
        """No unilateral misreport improves a VCG user's utility."""
        target = sorted(bids, key=repr)[0]
        truth = bids[target]

        def utility(profile):
            outcome = run_vcg_additive({"a": cost}, {"a": profile})
            granted = (target, "a") in outcome.efficient.grants
            value = truth if granted else 0.0
            return value - outcome.payment(target)

        honest = utility(bids)
        deviated_bids = dict(bids)
        deviated_bids[target] = lie
        assert utility(deviated_bids) <= honest + 1e-6

    @given(
        cost=st.floats(0.5, 100.0, allow_nan=False),
        bids=st.dictionaries(st.integers(0, 8), values, min_size=1, max_size=8),
    )
    @settings(max_examples=200)
    def test_vcg_never_over_recovers_per_user(self, cost, bids):
        """Each payment is at most the user's own bid (IR under truth)."""
        outcome = run_vcg_additive({"a": cost}, {"a": bids})
        for user, bid in bids.items():
            assert outcome.payment(user) <= bid + 1e-6
