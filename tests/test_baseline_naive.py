"""Tests for the naive negative-example mechanisms (Examples 1 and 2)."""

from __future__ import annotations

import pytest

from repro import AdditiveBid, MechanismError
from repro.baseline.naive import run_naive_online_shapley, run_naive_pay_your_bid
from repro.core import accounting


class TestPayYourBid:
    def test_cost_recovering(self):
        result = run_naive_pay_your_bid(100.0, {1: 60.0, 2: 50.0})
        assert result.implemented
        assert result.revenue == pytest.approx(110.0)

    def test_not_implemented_below_cost(self):
        result = run_naive_pay_your_bid(100.0, {1: 60.0, 2: 30.0})
        assert not result.implemented

    def test_underbidding_pays_off(self):
        """Example 1's flaw: shading the bid keeps service, lowers payment."""
        truth = {1: 60.0, 2: 50.0}
        honest = run_naive_pay_your_bid(100.0, truth)
        honest_utility = 60.0 - honest.payment(1)

        shaded = run_naive_pay_your_bid(100.0, {1: 50.0, 2: 50.0})
        shaded_utility = 60.0 - shaded.payment(1)
        assert 1 in shaded.serviced
        assert shaded_utility > honest_utility

    def test_validation(self):
        with pytest.raises(MechanismError):
            run_naive_pay_your_bid(0.0, {1: 1.0})
        with pytest.raises(MechanismError):
            run_naive_pay_your_bid(1.0, {1: -1.0})


class TestNaiveOnlineShapley:
    def test_example_2_free_ride(self):
        """Hiding slot-1 value free-rides under naive, not under AddOn."""
        from repro import run_addon

        cost = 100.0
        truth_2 = AdditiveBid.over(1, [26.0, 26.0])
        hiding = {
            1: AdditiveBid.over(1, [101.0]),
            2: AdditiveBid.over(2, [26.0]),
        }
        naive = run_naive_online_shapley(cost, hiding)
        # User 1 pays everything at t=1; user 2 rides free at t=2.
        assert naive.payment(1) == pytest.approx(100.0)
        assert naive.payment(2) == pytest.approx(0.0)
        assert 2 in naive.serviced_by_slot[2]
        utility = accounting.addon_user_utility(naive, 2, truth_2)
        assert utility == pytest.approx(26.0)

        addon = run_addon(cost, hiding)
        assert 2 not in addon.cumulative(2)

    def test_truthful_play_splits_cost(self):
        cost = 100.0
        bids = {
            1: AdditiveBid.over(1, [101.0]),
            2: AdditiveBid.over(1, [26.0, 26.0]),
        }
        naive = run_naive_online_shapley(cost, bids)
        assert naive.payment(1) == pytest.approx(50.0)
        assert naive.payment(2) == pytest.approx(50.0)

    def test_never_implemented(self):
        naive = run_naive_online_shapley(100.0, {1: AdditiveBid.over(1, [5.0])})
        assert not naive.implemented
        assert naive.total_payment == 0.0

    def test_cost_recovery_still_holds(self):
        # The naive scheme recovers cost (once) — its flaw is truthfulness.
        bids = {
            1: AdditiveBid.over(1, [50.0, 10.0]),
            2: AdditiveBid.over(1, [50.0, 0.0]),
            3: AdditiveBid.over(2, [90.0]),
        }
        naive = run_naive_online_shapley(100.0, bids)
        assert naive.implemented_at == 1
        assert naive.total_payment == pytest.approx(100.0)
        # User 3 arrives after implementation and rides for free.
        assert 3 in naive.serviced_by_slot[2]
        assert naive.payment(3) == 0.0
