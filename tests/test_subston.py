"""Unit tests for SubstOn (Mechanism 4) beyond the paper's Example 8."""

from __future__ import annotations

import pytest

from repro import MechanismError, SubstitutableBid, run_subston
from repro.core import accounting


class TestBasics:
    def test_single_user_single_opt(self):
        bids = {1: SubstitutableBid.over(1, [60.0, 60.0], {"a"})}
        outcome = run_subston({"a": 100.0}, bids)
        assert outcome.implemented_at == {"a": 1}
        assert outcome.grants == {1: "a"}
        assert outcome.payment(1) == pytest.approx(100.0)

    def test_unaffordable(self):
        bids = {1: SubstitutableBid.single_slot(1, 5.0, {"a"})}
        outcome = run_subston({"a": 100.0}, bids)
        assert outcome.implemented_at == {}
        assert outcome.total_payment == 0.0

    def test_cheapest_substitute_wins(self):
        bids = {
            1: SubstitutableBid.single_slot(1, 100.0, {"a", "b"}),
        }
        outcome = run_subston({"a": 50.0, "b": 40.0}, bids)
        assert outcome.grants[1] == "b"
        assert outcome.payment(1) == pytest.approx(40.0)

    def test_late_joiner_shrinks_share(self):
        bids = {
            1: SubstitutableBid.over(1, [60.0, 0.0, 0.0], {"a"}),
            2: SubstitutableBid.over(2, [0.0, 35.0], {"a"}),
        }
        outcome = run_subston({"a": 60.0}, bids)
        assert outcome.granted_at[1] == 1
        # User 2's residual at t=2 is 35 >= 60/2.
        assert outcome.granted_at[2] == 2
        assert outcome.payment(1) == pytest.approx(30.0)  # leaves at t=3
        assert outcome.payment(2) == pytest.approx(30.0)

    def test_departed_user_still_counts_in_denominator(self):
        bids = {
            1: SubstitutableBid.single_slot(1, 60.0, {"a"}),
            2: SubstitutableBid.single_slot(2, 30.0, {"a"}),
            3: SubstitutableBid.single_slot(3, 20.0, {"a"}),
        }
        outcome = run_subston({"a": 60.0}, bids)
        assert outcome.payment(1) == pytest.approx(60.0)
        assert outcome.payment(2) == pytest.approx(30.0)
        assert outcome.payment(3) == pytest.approx(20.0)

    def test_no_switching_after_grant(self):
        # User 1 is granted "a" at t=1; at t=2 a much cheaper "b" becomes
        # feasible for her set, but she is locked.
        bids = {
            1: SubstitutableBid.over(1, [100.0, 100.0], {"a", "b"}),
            2: SubstitutableBid.over(2, [30.0], {"b"}),
        }
        outcome = run_subston({"a": 80.0, "b": 20.0}, bids)
        assert outcome.grants[1] == "b" or outcome.grants[1] == "a"
        # At t=1 only "a" has a bidder... no: user 1 bids both, so the
        # cheaper "b" (share 20) wins at t=1 already.
        assert outcome.grants[1] == "b"
        assert outcome.granted_at[1] == 1
        # At t=2 user 2 joins "b": share falls to 10 for both.
        assert outcome.payment(1) == pytest.approx(10.0)
        assert outcome.payment(2) == pytest.approx(10.0)

    def test_horizon_defaults_to_last_departure(self):
        bids = {1: SubstitutableBid.over(2, [10.0, 10.0, 10.0], {"a"})}
        outcome = run_subston({"a": 5.0}, bids)
        assert outcome.horizon == 4

    def test_unknown_substitute_rejected(self):
        bids = {1: SubstitutableBid.single_slot(1, 10.0, {"nope"})}
        with pytest.raises(MechanismError):
            run_subston({"a": 5.0}, bids)

    def test_empty_game(self):
        outcome = run_subston({"a": 5.0}, {}, horizon=2)
        assert outcome.implemented_at == {}


class TestAccounting:
    def test_total_utility(self):
        bids = {
            1: SubstitutableBid.over(1, [60.0, 0.0], {"a"}),
            2: SubstitutableBid.over(2, [0.0, 35.0], {"a"}),
        }
        outcome = run_subston({"a": 60.0}, bids)
        # Realized: user 1 gets 60 (granted t=1), user 2 gets 35; cost 60.
        assert accounting.subston_total_utility(outcome, bids) == pytest.approx(35.0)

    def test_realized_value_requires_true_substitute(self):
        declared = {1: SubstitutableBid.single_slot(1, 50.0, {"a"})}
        truth = SubstitutableBid.single_slot(1, 50.0, {"b"})
        outcome = run_subston({"a": 10.0, "b": 10.0}, declared)
        assert outcome.grants[1] == "a"
        assert accounting.subston_realized_value(outcome, 1, truth) == 0.0
        assert accounting.subston_user_utility(outcome, 1, truth) == pytest.approx(-10.0)

    def test_value_accrues_from_grant_slot_only(self):
        bids = {
            1: SubstitutableBid.over(1, [10.0, 10.0, 80.0], {"a"}),
        }
        outcome = run_subston({"a": 95.0}, bids)
        # Residuals: t=1 -> 100 >= 95: granted immediately; all value counts.
        assert outcome.granted_at[1] == 1
        assert accounting.subston_realized_value(outcome, 1, bids[1]) == pytest.approx(100.0)

    def test_cost_recovery_with_churn(self):
        bids = {
            i: SubstitutableBid.single_slot(1 + (i % 3), 40.0, {"a", "b"})
            for i in range(6)
        }
        outcome = run_subston({"a": 70.0, "b": 90.0}, bids)
        assert accounting.cloud_balance(outcome) >= -1e-9
