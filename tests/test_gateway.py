"""The tenant gateway: envelope round-trips, facade semantics, hot path.

Three contracts from DESIGN.md's "Gateway conventions":

* every envelope and every public value object survives
  ``from_dict(to_dict(x)) == x`` — including a real JSON hop;
* a batched ``PricingService.dispatch`` produces outcomes and metered costs
  bit-identical to driving the ``FleetEngine`` directly;
* no malformed envelope can make the gateway raise anything outside the
  ``ReproError`` hierarchy — the wire entry point never raises at all.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AdditiveBid,
    GameConfigError,
    PricingService,
    ProtocolError,
    ReproError,
    run_addoff,
    run_addon,
    run_shapley,
    run_substoff,
    run_subston,
)
from repro.bids.substitutive import SubstitutableBid
from repro.cloudsim import CloudService, OptimizationCatalog
from repro.db import CandidateView, Catalog, SavingsEstimator, Schema, Table
from repro.errors import (
    BidError,
    DeadlineError,
    MechanismError,
    OverloadedError,
    QueryError,
    RevisionError,
    SchemaError,
)
from repro.fleet import TenantWorkload, build_service
from repro.fleet.engine import FleetEngine
from repro.gateway import (
    API_VERSION,
    AdvanceSlots,
    AdviseRequest,
    Configure,
    ErrorReply,
    LedgerQuery,
    RETRYABLE_CODES,
    ReviseBid,
    RunQuery,
    SubmitBids,
    error_code,
    from_dict,
    replay,
    reply_from_dict,
    request_from_dict,
    to_dict,
    write_trace,
)
from repro.gateway.trace import iter_trace
from repro.workloads.fleet import (
    fleet_arrival_trace,
    fleet_batches,
    fleet_game_costs,
)


def roundtrip(obj):
    """to_dict -> real JSON hop -> from_dict."""
    return from_dict(json.loads(json.dumps(to_dict(obj))))


# ------------------------------------------------------------- envelopes --

ENVELOPE_EXAMPLES = [
    Configure(optimizations=(("idx", 40.0), (("t", 1), 3.5)), horizon=6, shards=2),
    SubmitBids(tenant="ann", bids=(("idx", 1, (30.0, 2.5)), ("v", 2, (1.0,)))),
    SubmitBids(tenant=7, bids=(), revisable=True),
    ReviseBid(tenant="bob", optimization="idx", new_values={3: 5.0, 4: 6.5}),
    AdvanceSlots(slots=3),
    RunQuery(tenant="t", query="members", table="snap_02", halo=3),
    RunQuery(tenant="t", query="chain", tables=("s2", "s1"), halo=0, record=False),
    RunQuery(tenant="t", query="histogram", table="s1", pids=(1, 2, 3)),
    AdviseRequest(horizon=5, dollars_per_byte=1e-7),
    AdviseRequest(),
    LedgerQuery(tenant=("compound", 3)),
]


class TestEnvelopeRoundTrips:
    @pytest.mark.parametrize("envelope", ENVELOPE_EXAMPLES, ids=lambda e: type(e).__name__)
    def test_request_round_trips_through_json(self, envelope):
        assert roundtrip(envelope) == envelope

    def test_replies_round_trip(self):
        service = PricingService({"idx": 40.0}, horizon=3)
        replies = [
            service.dispatch(SubmitBids(tenant="ann", bids=(("idx", 1, (50.0,)),))),
            service.dispatch(AdvanceSlots(slots=3)),
            service.dispatch(LedgerQuery(tenant="ann")),
            service.dispatch(SubmitBids(tenant="x", bids=(("nope", 1, (1.0,)),))),
        ]
        for reply in replies:
            assert roundtrip(reply) == reply
        assert isinstance(replies[-1], ErrorReply)

    def test_version_is_stamped_and_checked(self):
        wire = to_dict(AdvanceSlots(slots=1))
        assert wire["api"] == API_VERSION
        wire["api"] = "0.9"
        with pytest.raises(ProtocolError) as excinfo:
            request_from_dict(wire)
        assert excinfo.value.code == "version"

    def test_unknown_fields_rejected(self):
        wire = to_dict(AdvanceSlots(slots=1))
        wire["extra"] = True
        with pytest.raises(ProtocolError):
            request_from_dict(wire)


# ---------------------------------------------------------- value objects --


def _query_result():
    catalog = Catalog()
    table = Table("t", Schema.of(pid="int", halo="int"))
    table.extend((i, i % 3 - 1) for i in range(30))
    catalog.create_table(table)
    from repro.db import QueryEngine

    return QueryEngine(catalog).halo_members("t", 1)


def _fleet_report():
    engine = FleetEngine(
        OptimizationCatalog.from_costs({"a": 10.0, ("b", 2): 5.0}), horizon=4
    )
    engine.place_bid("ann", "a", AdditiveBid.over(1, [6.0, 6.0]))
    engine.place_bid(3, "a", AdditiveBid.over(2, [5.0]))
    engine.place_bid("eve", ("b", 2), AdditiveBid.over(1, [1.0]))
    return engine.run_to_end()


VALUE_EXAMPLES = [
    run_shapley(cost=100.0, bids={"ann": 60.0, "bob": 55.0, "eve": 20.0}),
    run_addoff(
        costs={"idx": 100.0, "view": 90.0},
        bids={"idx": {1: 70.0, 2: 60.0}, "view": {2: 30.0}},
    ),
    run_addon(
        cost=100.0,
        bids={1: AdditiveBid.over(1, [101.0]), 2: AdditiveBid.over(1, [16.0] * 3)},
        horizon=3,
    ),
    run_substoff(
        costs={"v1": 60.0, "v2": 100.0},
        bids={1: {"v1": 50.0, "v2": 50.0}, 2: {"v1": 40.0, "v2": 0.0}},
    ),
    run_subston(
        costs={"v1": 60.0, "v2": 50.0},
        bids={
            1: SubstitutableBid.over(1, [50.0, 50.0], {"v1", "v2"}),
            2: SubstitutableBid.over(2, [100.0], {"v2"}),
        },
        horizon=2,
    ),
    _fleet_report(),
    _query_result(),
]


class TestValueObjectRoundTrips:
    @pytest.mark.parametrize("obj", VALUE_EXAMPLES, ids=lambda o: type(o).__name__)
    def test_round_trips_through_json(self, obj):
        assert roundtrip(obj) == obj

    def test_savings_quote_round_trips(self):
        catalog = Catalog()
        table = Table("events", Schema.of(uid="int", ts="int", payload="str"))
        table.extend((i, i * 7, f"p{i}") for i in range(200))
        catalog.create_table(table)
        estimator = SavingsEstimator(catalog)
        quote = estimator.quote(CandidateView("v", "events", ("uid", "ts")))
        assert roundtrip(quote) == quote

    def test_fleet_report_round_trip_covers_ledger_and_events(self):
        report = _fleet_report()
        back = roundtrip(report)
        assert back.ledger == report.ledger
        assert back.events == report.events
        assert back.ledger.balance == report.ledger.balance

    @given(
        cost=st.floats(min_value=0.5, max_value=500.0, allow_nan=False),
        bids=st.dictionaries(
            st.one_of(st.integers(0, 50), st.text(max_size=4)),
            st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
            max_size=12,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_shapley_round_trip_property(self, cost, bids):
        result = run_shapley(cost=cost, bids=bids)
        assert roundtrip(result) == result


# --------------------------------------------------- facade vs direct fleet --


class TestGatewayPreservesFleetPath:
    GAMES, USERS, SLOTS = 20, 1500, 150

    def _population(self, seed=2012):
        costs = fleet_game_costs(seed, self.GAMES, 30.0)
        batches = fleet_batches(seed + 1, self.USERS, self.GAMES, self.SLOTS, 4)
        trace = fleet_arrival_trace(seed + 1, self.USERS, self.GAMES, self.SLOTS, 4)
        return costs, batches, trace

    def test_dispatch_many_bit_identical_to_direct_engine(self):
        costs, batches, trace = self._population()
        direct = FleetEngine(
            OptimizationCatalog.from_costs(costs), horizon=self.SLOTS, shards=4
        )
        for batch in batches:
            direct.ingest(batch)
        direct_report = direct.run_to_end()

        service = PricingService(
            OptimizationCatalog.from_costs(costs), horizon=self.SLOTS, shards=4
        )
        requests = [
            SubmitBids(
                tenant=a.user,
                bids=((a.optimization, a.bid.start, a.bid.schedule.values),),
            )
            for a in trace
        ]
        replies = service.dispatch(requests)
        assert all(not isinstance(r, ErrorReply) for r in replies)
        report = service.run_to_end()

        assert dict(report.payments) == dict(direct_report.payments)
        assert dict(report.granted_at) == dict(direct_report.granted_at)
        assert dict(report.implemented) == dict(direct_report.implemented)
        assert dict(report.game_revenue) == dict(direct_report.game_revenue)
        assert report.ledger == direct_report.ledger
        assert report.events == direct_report.events

    def test_per_request_dispatch_matches_place_bid_path(self):
        costs, _, trace = self._population(seed=77)
        direct = FleetEngine(OptimizationCatalog.from_costs(costs), horizon=self.SLOTS)
        service = PricingService(
            OptimizationCatalog.from_costs(costs), horizon=self.SLOTS
        )
        for arrival in trace[:300]:
            direct.place_bid(arrival.user, arrival.optimization, arrival.bid)
            reply = service.dispatch(
                SubmitBids(
                    tenant=arrival.user,
                    bids=(
                        (
                            arrival.optimization,
                            arrival.bid.start,
                            arrival.bid.schedule.values,
                        ),
                    ),
                )
            )
            assert not isinstance(reply, ErrorReply)
        assert dict(direct.run_to_end().payments) == dict(
            service.run_to_end().payments
        )

    def test_mixed_batch_flushes_in_order(self):
        service = PricingService({"idx": 40.0}, horizon=4)
        replies = service.dispatch(
            [
                SubmitBids(tenant="ann", bids=(("idx", 1, (30.0, 15.0)),)),
                SubmitBids(tenant="bob", bids=(("idx", 1, (20.0,)),)),
                AdvanceSlots(slots=4),
                LedgerQuery(tenant="ann"),
            ]
        )
        kinds = [type(r).__name__ for r in replies]
        assert kinds == ["BidsReply", "BidsReply", "SlotReply", "LedgerReply"]
        assert replies[3].total > 0.0

    def test_revisable_bids_skip_bulk_and_stay_revisable(self):
        service = PricingService({"idx": 40.0}, horizon=4)
        replies = service.dispatch(
            [
                SubmitBids(
                    tenant="ann", bids=(("idx", 1, (10.0, 10.0)),), revisable=True
                ),
                SubmitBids(tenant="bob", bids=(("idx", 1, (5.0,)),)),
                ReviseBid(tenant="ann", optimization="idx", new_values={2: 35.0}),
            ]
        )
        assert [type(r).__name__ for r in replies] == [
            "BidsReply",
            "BidsReply",
            "ReviseReply",
        ]
        report = service.run_to_end()
        # Unrevised, slot-1 residuals (20 + 5) fall short of 40; the
        # revision lifts ann's residual to 45 and funds the game.
        assert report.implemented == {"idx": 1}

    def test_bulk_submitted_bids_cannot_be_revised(self):
        service = PricingService({"idx": 40.0}, horizon=4)
        replies = service.dispatch(
            [
                SubmitBids(tenant="ann", bids=(("idx", 1, (10.0, 10.0)),)),
                ReviseBid(tenant="ann", optimization="idx", new_values={2: 35.0}),
            ]
        )
        assert isinstance(replies[1], ErrorReply)
        assert replies[1].code == "game-config"

    def test_bulk_run_shares_one_verdict_on_error(self):
        service = PricingService({"idx": 40.0}, horizon=4)
        replies = service.dispatch(
            [
                SubmitBids(tenant="ann", bids=(("idx", 1, (30.0,)),)),
                SubmitBids(tenant="bob", bids=(("nope", 1, (1.0,)),)),
            ]
        )
        assert [type(r).__name__ for r in replies] == ["ErrorReply", "ErrorReply"]
        assert all(r.code == "game-config" for r in replies)

    def test_failed_bulk_run_commits_nothing(self):
        # All-or-nothing across duration batches: a later batch failing
        # must not leave an earlier one scheduled (and later invoiced).
        service = PricingService({"idx": 40.0, "v": 10.0}, horizon=2)
        replies = service.dispatch(
            [
                SubmitBids(tenant="ann", bids=(("idx", 1, (50.0,)),)),
                # duration 3 ends beyond the horizon: the run must fail whole
                SubmitBids(tenant="bob", bids=(("v", 1, (1.0, 1.0, 1.0)),)),
            ]
        )
        assert all(isinstance(r, ErrorReply) for r in replies)
        report = service.run_to_end()
        assert not report.implemented
        assert dict(report.payments) in ({}, {"ann": 0.0})
        assert service.dispatch(LedgerQuery(tenant="ann")).total == 0.0
        # ...and the failed run must not squat on the (tenant, game) pair.
        service2 = PricingService({"idx": 40.0, "v": 10.0}, horizon=2)
        service2.dispatch(
            [SubmitBids(tenant="ann", bids=(("idx", 1, (50.0,)),)),
             SubmitBids(tenant="bob", bids=(("v", 1, (1.0,) * 3),))]
        )
        retry = service2.dispatch(
            [SubmitBids(tenant="ann", bids=(("idx", 1, (50.0,)),))]
        )
        assert retry.failed is None

    def test_multi_bid_submit_is_atomic(self):
        # A duplicate inside one envelope must not leave the first bid
        # committed behind the ErrorReply, and a retry must then succeed.
        service = PricingService({"x": 10.0}, horizon=2)
        bad = SubmitBids(tenant="a", bids=(("x", 1, (5.0,)), ("x", 1, (5.0,))))
        reply = service.dispatch(bad)
        assert isinstance(reply, ErrorReply)
        retry = service.dispatch(SubmitBids(tenant="a", bids=(("x", 1, (5.0,)),)))
        assert not isinstance(retry, ErrorReply)

    def test_attach_fleet_seeds_duplicate_guard(self):
        import numpy as np

        from repro.fleet.engine import FleetBatch

        engine = FleetEngine(OptimizationCatalog.from_costs({"x": 10.0}), horizon=2)
        engine.ingest(
            FleetBatch(
                users=("ann",),
                opt_ranks=np.array([0]),
                starts=np.array([1]),
                values=np.array([[20.0]]),
            )
        )
        service = PricingService(fleet=engine)
        acks = service.dispatch(
            [SubmitBids(tenant="ann", bids=(("x", 1, (20.0,)),))]
        )
        assert acks.failed is not None and acks[0].code == "game-config"
        report = service.run_to_end()
        assert report.payments.get("ann", 0.0) <= 10.0  # never double-invoiced

    def test_oversized_advance_moves_nothing(self):
        # An ErrorReply must mean the clock did not move: no partial
        # advance (and no settlement) behind a "period is over" error.
        service = PricingService({"idx": 40.0}, horizon=2)
        service.dispatch(SubmitBids(tenant="a", bids=(("idx", 1, (50.0,)),)))
        reply = service.dispatch(AdvanceSlots(slots=5))
        assert isinstance(reply, ErrorReply) and reply.code == "mechanism"
        assert service.slot == 0
        assert service.dispatch(LedgerQuery(tenant="a")).total == 0.0
        assert not isinstance(service.dispatch(AdvanceSlots(slots=2)), ErrorReply)

    def test_configure_rejects_duplicate_ids(self):
        service = PricingService()
        reply = service.dispatch(
            Configure(optimizations=(("idx", 40.0), ("idx", 25.0)), horizon=3)
        )
        assert isinstance(reply, ErrorReply) and reply.code == "game-config"
        assert service.fleet is None

    def test_malformed_construction_raises_protocol_error(self):
        # In-process construction (TenantSession included) must not leak
        # bare ValueError for request-shaped mistakes.
        for build in (
            lambda: SubmitBids(tenant="a", bids=(("x", 1),)),  # short triple
            lambda: SubmitBids(tenant="a", bids=(("x", "one", (1.0,)),)),
            lambda: Configure(optimizations=(("x",),), horizon=2),
            lambda: AdvanceSlots(slots="three"),
            lambda: ReviseBid(tenant="a", optimization="x", new_values=((1,),)),
        ):
            with pytest.raises(ProtocolError):
                build()

    def test_unhashable_ids_rejected_as_data(self):
        # Tenant/optimization ids key dicts throughout the engine; an
        # unhashable id must fail at envelope construction as a
        # ProtocolError (ErrorReply on the wire), never a TypeError
        # mid-dispatch.
        service = PricingService({"idx": 40.0}, horizon=2)
        for build in (
            lambda: SubmitBids(tenant=["ann"], bids=(("idx", 1, (5.0,)),)),
            lambda: SubmitBids(tenant="a", bids=((["idx"], 1, (5.0,)),)),
            lambda: ReviseBid(tenant={}, optimization="idx", new_values={2: 1.0}),
            lambda: LedgerQuery(tenant=["x"]),
            lambda: Configure(optimizations=((["a"], 5.0),), horizon=2),
        ):
            with pytest.raises(ProtocolError):
                build()
        # On the wire, JSON lists decode to (hashable) tuples; a JSON
        # object is the unhashable case and must come back as data.
        reply = service.dispatch_json(
            {"api": "1.6", "kind": "LedgerQuery", "tenant": {"a": 1}}
        )
        assert reply["kind"] == "ErrorReply" and reply["code"] == "protocol"

    def test_error_codes_match_across_submit_paths(self):
        # The identical invalid envelope must yield the same stable code
        # whether it travels the per-bid or the bulk path.
        for bids in (
            (("idx", 1, ()),),        # empty schedule
            (("idx", 0, (1.0,)),),    # start before slot 1
            (("idx", 1, (-1.0,)),),   # negative value
        ):
            request = SubmitBids(tenant="a", bids=bids)
            per_bid = PricingService({"idx": 40.0}, horizon=2).dispatch(request)
            bulk = PricingService({"idx": 40.0}, horizon=2).dispatch(
                [request]
            )[0]
            assert isinstance(per_bid, ErrorReply)
            assert per_bid.code == bulk.code == "bid", (bids, per_bid, bulk)

    def test_badly_typed_wire_fields_become_error_replies(self):
        service = PricingService({"idx": 40.0}, horizon=3)
        for payload in (
            {"api": "1.6", "kind": "AdvanceSlots", "slots": "three"},
            {"api": "1.6", "kind": "Configure", "optimizations": [], "horizon": "x"},
            {"api": "1.6", "kind": "RunQuery", "tenant": "t", "query": "members",
             "halo": "zero"},
            {"api": "1.6", "kind": "AdviseRequest", "horizon": [1]},
        ):
            reply = service.dispatch_json(payload)
            assert reply["kind"] == "ErrorReply" and reply["code"] == "protocol"

    def test_bulk_duplicates_rejected_not_double_invoiced(self):
        # dispatch() rejects a duplicate bid; the bulk path must not
        # silently accept (and double-invoice) the same envelope list.
        dup = SubmitBids(tenant="ann", bids=(("idx", 1, (50.0,)),))
        service = PricingService({"idx": 40.0}, horizon=1)
        replies = service.dispatch([dup, dup])
        assert [type(r).__name__ for r in replies] == ["ErrorReply", "ErrorReply"]
        # Across two bulk runs as well.
        service2 = PricingService({"idx": 40.0}, horizon=1)
        assert service2.dispatch([dup]).failed is None
        second = service2.dispatch([dup])
        assert second.failed is not None and second[0].code == "game-config"
        report = service2.run_to_end()
        assert report.payments.get("ann", 0.0) <= 40.0


# ------------------------------------------------------------ the facade --


class TestPricingService:
    def test_requires_open_period(self):
        service = PricingService()
        reply = service.dispatch(LedgerQuery(tenant="ann"))
        assert isinstance(reply, ErrorReply)
        assert reply.code == "game-config"
        reply = service.dispatch(
            Configure(optimizations=(("idx", 40.0),), horizon=3)
        )
        assert type(reply).__name__ == "ConfigReply"
        assert not isinstance(service.dispatch(LedgerQuery(tenant="ann")), ErrorReply)

    def test_session_binds_tenant(self):
        service = PricingService({"idx": 40.0}, horizon=3)
        session = service.session("ann")
        assert not isinstance(
            session.submit_bids([("idx", 1, (50.0,))]), ErrorReply
        )
        assert not isinstance(session.revise_bid("idx", {2: 60.0}), ErrorReply)
        service.dispatch(AdvanceSlots(slots=3))
        ledger = session.ledger()
        assert ledger.tenant == "ann"
        assert ledger.total == pytest.approx(40.0)

    def test_queries_and_advice_through_envelopes(self):
        import numpy as np

        db = Catalog()
        rng = np.random.default_rng(11)
        for name in ("snap_01", "snap_02"):
            db.create_table(
                Table.from_columns(
                    name,
                    Schema.of(pid="int", halo="int"),
                    {
                        "pid": np.arange(150),
                        "halo": rng.integers(-1, 4, size=150),
                    },
                )
            )
        service = PricingService(db_catalog=db)
        session = service.session("ada")
        members = session.run_query("members", table="snap_02", halo=0)
        assert members.units > 0 and len(members.rows) > 0
        top = session.run_query("top", tables=("snap_02", "snap_01"), halo=0)
        assert len(top.rows) == 1
        chain = session.run_query("chain", tables=("snap_02", "snap_01"), halo=0)
        assert len(chain.rows) == 2
        advice = service.dispatch(AdviseRequest(horizon=4, dollars_per_byte=1e-9))
        assert type(advice).__name__ == "AdviseReply"
        assert set(advice.adopted) <= set(advice.candidates)
        # record=False executions must not grow the workload log.
        before = len(service.log)
        session.run_query("members", table="snap_02", halo=1, record=False)
        assert len(service.log) == before

    def test_cloudservice_additive_rides_the_gateway(self):
        catalog = OptimizationCatalog.from_costs({"opt": 100.0})
        cloud = CloudService(catalog, horizon=3, mode="additive")
        cloud.place_additive_bid(1, "opt", AdditiveBid.over(1, [101.0]))
        gateway = cloud.gateway
        assert gateway.fleet is cloud._fleet
        reply = gateway.dispatch(SubmitBids(tenant=2, bids=(("opt", 2, (26.0,)),)))
        assert not isinstance(reply, ErrorReply)
        report = cloud.run_to_end()
        assert report.payments[1] == pytest.approx(100.0)

    def test_pipeline_build_service(self):
        catalog = Catalog()
        table = Table("events", Schema.of(uid="int", ts="int", payload="str"))
        table.extend((i, i * 7, f"p{i}") for i in range(1000))
        catalog.create_table(table)
        estimator = SavingsEstimator(catalog)
        narrow = CandidateView("v_uid", "events", ("uid", "ts"))
        tenants = [
            TenantWorkload(f"t{i}", "events", ("uid",), start=1, end=6)
            for i in range(4)
        ]
        service = build_service(
            estimator, tenants, [narrow], horizon=6, dollars_per_byte=1e-4
        )
        assert isinstance(service, PricingService)
        assert service.db is catalog
        report = service.run_to_end()
        assert report.implemented == {"v_uid": 1}
        statement = service.dispatch(LedgerQuery(tenant="t0"))
        assert statement.total > 0.0


# ----------------------------------------------------------------- errors --


class TestErrorMapping:
    CASES = [
        (RevisionError("x"), "revision"),
        (BidError("x"), "bid"),
        (MechanismError("x"), "mechanism"),
        (GameConfigError("x"), "game-config"),
        (SchemaError("x"), "schema"),
        (QueryError("x"), "query"),
        (ProtocolError("x"), "protocol"),
        (ProtocolError("x", code="version"), "version"),
        (ReproError("x"), "internal"),
    ]

    @pytest.mark.parametrize("exc,code", CASES, ids=lambda c: str(c))
    def test_hierarchy_maps_to_stable_codes(self, exc, code):
        if isinstance(exc, BaseException):
            assert error_code(exc) == code
            assert ErrorReply.of(exc).code == code

    def test_every_repro_error_subclass_has_a_code(self):
        def walk(cls):
            yield cls
            for sub in cls.__subclasses__():
                yield from walk(sub)

        for cls in walk(ReproError):
            exc = cls.__new__(cls)
            assert error_code(exc) != "", cls


class TestMalformedEnvelopeFuzz:
    """No malformed envelope may surface anything but ErrorReply/ReproError."""

    def _base_wires(self):
        return [to_dict(e) for e in ENVELOPE_EXAMPLES]

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_decode_only_raises_repro_errors(self, data):
        wire = dict(data.draw(st.sampled_from(self._base_wires())))
        mutation = data.draw(st.sampled_from(["drop", "retype", "junk", "version"]))
        if mutation == "drop" and len(wire) > 2:
            del wire[data.draw(st.sampled_from(sorted(wire)))]
        elif mutation == "retype":
            key = data.draw(st.sampled_from(sorted(wire)))
            wire[key] = data.draw(
                st.one_of(st.none(), st.integers(), st.text(max_size=3), st.booleans())
            )
        elif mutation == "junk":
            wire[data.draw(st.text(min_size=1, max_size=6))] = data.draw(
                st.one_of(st.integers(), st.lists(st.integers(), max_size=3))
            )
        else:
            wire["api"] = data.draw(st.one_of(st.none(), st.text(max_size=4)))
        try:
            request_from_dict(wire)
        except ReproError:
            pass  # the only acceptable exception family

    @given(data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_wire_dispatch_is_total(self, data):
        service = PricingService({"idx": 40.0}, horizon=3)
        payload = data.draw(
            st.one_of(
                st.none(),
                st.integers(),
                st.text(max_size=5),
                st.lists(st.integers(), max_size=3),
                st.dictionaries(st.text(max_size=6), st.integers(), max_size=4),
                st.sampled_from(self._base_wires()).map(dict),
            )
        )
        if isinstance(payload, dict) and data.draw(st.booleans()):
            payload.pop("tenant", None)
        if isinstance(payload, dict) and payload and data.draw(st.booleans()):
            # Retype one field: badly-typed scalars must become
            # ErrorReply data, never a raw TypeError.
            key = data.draw(st.sampled_from(sorted(payload)))
            payload[key] = data.draw(
                st.one_of(st.none(), st.text(max_size=3), st.lists(st.integers(), max_size=2))
            )
        reply = service.dispatch_json(payload)
        assert isinstance(reply, dict)
        assert reply["kind"] in {
            "ConfigReply",
            "BidsReply",
            "ReviseReply",
            "SlotReply",
            "QueryReply",
            "AdviseReply",
            "LedgerReply",
            "ErrorReply",
        }

    def test_decoded_garbage_value_objects(self):
        for junk in (
            {"type": "ShapleyResult"},
            {"type": "ShapleyResult", "serviced": 3, "price": "x", "payments": [], "rounds": 1},
            {"type": "Nope"},
            {"kind": None},
            [],
            "hello",
        ):
            with pytest.raises(ReproError):
                from_dict(junk)


# ----------------------------------------------------------------- traces --


class TestTraces:
    def test_write_then_replay_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        requests = [
            Configure(optimizations=(("idx", 40.0),), horizon=4),
            SubmitBids(tenant="ann", bids=(("idx", 1, (30.0, 15.0)),)),
            SubmitBids(tenant="bob", bids=(("idx", 1, (20.0,)),)),
            AdvanceSlots(slots=4),
            LedgerQuery(tenant="ann"),
        ]
        assert write_trace(path, requests) == 5
        result = replay(iter_trace(path))
        assert len(result.replies) == 5
        assert not result.errors
        assert result.counts()["BidsReply"] == 2
        assert result.service.report().implemented == {"idx": 1}

    def test_replay_never_raises_on_junk_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(
                [
                    "this is not json",
                    '{"api": "1.6", "kind": "Mystery"}',
                    '{"api": "9.9", "kind": "AdvanceSlots", "slots": 1}',
                    '{"api": "1.6", "kind": "AdvanceSlots", "slots": 1}',
                ]
            )
            + "\n"
        )
        result = replay(iter_trace(path))
        assert len(result.replies) == 4
        codes = [r["code"] for r in result.errors]
        assert codes == ["protocol", "protocol", "version", "game-config"]

    def test_replay_equals_direct_dispatch(self, tmp_path):
        requests = [
            Configure(optimizations=(("a", 20.0), ("b", 30.0)), horizon=5, shards=2),
            SubmitBids(tenant="u1", bids=(("a", 1, (15.0, 10.0)),)),
            SubmitBids(tenant="u2", bids=(("a", 2, (12.0,)), ("b", 1, (5.0,)))),
            AdvanceSlots(slots=5),
        ]
        path = tmp_path / "t.jsonl"
        write_trace(path, requests)
        replayed = replay(iter_trace(path)).service.report()

        service = PricingService()
        service.dispatch(requests)
        direct = service.run_to_end()
        assert dict(replayed.payments) == dict(direct.payments)
        assert replayed.ledger == direct.ledger


# ---------------------------------------------------- service error paths --


class TestServiceErrorPaths:
    def _db_service(self) -> PricingService:
        db = Catalog()
        table = Table("snap_01", Schema.of(pid="int", halo="int"))
        for i in range(10):
            table.insert((i, i % 3))
        db.create_table(table)
        return PricingService(db_catalog=db)

    def test_dispatch_after_close_is_a_protocol_error(self):
        service = PricingService({"idx": 40.0}, horizon=3)
        service.close()
        reply = service.dispatch(LedgerQuery(tenant="ann"))
        assert isinstance(reply, ErrorReply)
        assert reply.code == "protocol"
        assert "closed" in reply.message
        many = service.dispatch(
            [
                SubmitBids(tenant="ann", bids=(("idx", 1, (5.0,)),)),
                AdvanceSlots(slots=1),
            ]
        )
        assert [r.code for r in many] == ["protocol", "protocol"]
        wire = service.dispatch_json(to_dict(AdvanceSlots(slots=1)))
        assert wire["kind"] == "ErrorReply"
        assert wire["code"] == "protocol"
        service.close()  # idempotent

    @pytest.mark.parametrize(
        "wire",
        [to_dict(e) for e in ENVELOPE_EXAMPLES],
        ids=lambda w: w["kind"],
    )
    def test_unknown_api_version_is_a_version_error_for_every_kind(self, wire):
        service = PricingService({"idx": 40.0}, horizon=3)
        reply = service.dispatch_json(dict(wire, api="9.9"))
        assert reply["kind"] == "ErrorReply"
        assert reply["code"] == "version"

    def test_as_of_at_the_snapshot_retention_eviction_boundary(self):
        from repro.gateway.service import SNAPSHOT_RETENTION

        service = self._db_service()
        table = service.db.table("snap_01")

        def members(as_of=None):
            return service.dispatch(
                RunQuery(
                    tenant="t", query="members", table="snap_01", halo=0,
                    as_of=as_of,
                )
            )

        pinned = []
        for i in range(SNAPSHOT_RETENTION):
            reply = members()
            assert not isinstance(reply, ErrorReply)
            pinned.append(reply.epoch)
            table.insert((100 + i, 0))
        assert len(set(pinned)) == SNAPSHOT_RETENTION
        # Exactly at capacity: the oldest pinned epoch is still served.
        at_boundary = members(as_of=pinned[0])
        assert not isinstance(at_boundary, ErrorReply)
        assert at_boundary.epoch == pinned[0]
        # Pinning one more epoch crosses the boundary and evicts it.
        over = members()
        assert not isinstance(over, ErrorReply)
        assert over.epoch not in pinned
        evicted = members(as_of=pinned[0])
        assert isinstance(evicted, ErrorReply)
        assert evicted.code == "query"
        assert str(pinned[0]) in evicted.message
        survivor = members(as_of=pinned[1])
        assert not isinstance(survivor, ErrorReply)
        assert survivor.epoch == pinned[1]


# ------------------------------------------------------ retryable contract --


class TestRetryableContract:
    """The serving-layer error codes and the ``retryable`` wire field."""

    def test_serving_exceptions_map_to_their_codes(self):
        assert error_code(OverloadedError("x")) == "overloaded"
        assert error_code(DeadlineError("x")) == "deadline_exceeded"

    def test_retryable_is_derived_from_the_code(self):
        for _exc, code in (
            (None, "overloaded"),
            (None, "deadline_exceeded"),
            (None, "bid"),
            (None, "protocol"),
            (None, "internal"),
        ):
            reply = ErrorReply(code=code, message="m", request_kind="SubmitBids")
            assert reply.retryable is (code in RETRYABLE_CODES)

    def test_retryable_codes_are_exactly_the_shed_codes(self):
        # Only errors where the server *guarantees* the request never
        # reached the pricing core may invite a retry — anything else
        # could double-submit.
        assert RETRYABLE_CODES == frozenset({"overloaded", "deadline_exceeded"})

    def test_retry_after_rides_the_exception_into_the_reply(self):
        reply = ErrorReply.of(OverloadedError("busy", retry_after=0.25))
        assert reply.code == "overloaded"
        assert reply.retryable is True
        assert reply.retry_after == 0.25

    def test_error_reply_round_trips_retry_fields(self):
        for code, retry_after in [
            ("overloaded", 0.05),
            ("deadline_exceeded", 0.0),
            ("bid", 0.0),
        ]:
            reply = ErrorReply(
                code=code,
                message="m",
                request_kind="SubmitBids",
                retry_after=retry_after,
            )
            wire = json.loads(json.dumps(to_dict(reply)))
            assert wire["retryable"] is (code in RETRYABLE_CODES)
            assert reply_from_dict(wire) == reply
            assert roundtrip(reply) == reply

    def test_legacy_error_wire_without_retryable_still_decodes(self):
        # Replies recorded before the field existed (e.g. old traces)
        # decode with retryable derived from their code.
        wire = {
            "api": API_VERSION,
            "kind": "ErrorReply",
            "code": "overloaded",
            "message": "m",
            "request_kind": "SubmitBids",
        }
        reply = reply_from_dict(wire)
        assert reply.retryable is True


# -------------------------------------------------- error-path trace replay --


class TestErrorPathTraceReplay:
    """Streams that mix requests with recorded error replies still replay."""

    def _lines(self):
        return [
            to_dict(Configure(optimizations=(("idx", 40.0),), horizon=3)),
            to_dict(SubmitBids(tenant="ann", bids=(("idx", 1, (50.0,)),))),
            to_dict(
                ErrorReply(
                    code="overloaded",
                    message="shed at the gateway",
                    request_kind="SubmitBids",
                    retry_after=0.05,
                )
            ),
            to_dict(
                ErrorReply(
                    code="deadline_exceeded",
                    message="cancelled before dispatch",
                    request_kind="LedgerQuery",
                )
            ),
            to_dict(AdvanceSlots(slots=3)),
            to_dict(LedgerQuery(tenant="ann")),
        ]

    def test_replay_preserves_ordering_and_never_raises(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        lines = self._lines()
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        result = replay(iter_trace(path))
        # One reply per line, in order: reply records are not requests,
        # so they come back as typed protocol errors *in position* —
        # the surrounding requests still apply.
        assert len(result.replies) == len(lines)
        kinds = [r["kind"] for r in result.replies]
        assert kinds == [
            "ConfigReply",
            "BidsReply",
            "ErrorReply",
            "ErrorReply",
            "SlotReply",
            "LedgerReply",
        ]
        assert [r["code"] for r in result.errors] == ["protocol", "protocol"]
        assert result.service.report().implemented == {"idx": 1}

    def test_recorded_error_replies_decode_with_retry_fields(self):
        for wire in self._lines():
            if wire["kind"] != "ErrorReply":
                continue
            reply = reply_from_dict(json.loads(json.dumps(wire)))
            assert isinstance(reply, ErrorReply)
            assert reply.retryable is True
            assert reply.code in RETRYABLE_CODES


class TestUnifiedDispatchSurface:
    """API 1.5 folded ``dispatch_many``/``dispatch_dict`` into two entry
    points: ``dispatch`` (Request or request sequence) and
    ``dispatch_json`` (wire dicts). The warning aliases survived exactly
    one release; API 1.6 removed them."""

    def _service(self):
        return PricingService({"idx": 40.0}, horizon=3)

    def test_dispatch_takes_request_or_sequence(self):
        service = self._service()
        single = service.dispatch(SubmitBids(tenant="a", bids=(("idx", 1, (50.0,)),)))
        assert single.accepted == 1
        replies = service.dispatch(
            [
                SubmitBids(tenant="b", bids=(("idx", 1, (50.0,)),)),
                AdvanceSlots(slots=1),
            ]
        )
        assert [type(r).__name__ for r in replies] == ["BidsReply", "SlotReply"]
        # Generators are sequences too.
        more = service.dispatch(
            AdvanceSlots(slots=1) for _ in range(2)
        )
        assert [r.slot for r in more] == [2, 3]

    def test_dispatch_rejects_wire_dicts_as_data(self):
        service = self._service()
        wire = to_dict(AdvanceSlots(slots=1))
        reply = service.dispatch(wire)
        assert isinstance(reply, ErrorReply)
        assert reply.code == "protocol"
        assert "dispatch_json" in reply.message
        assert service.fleet.slot == 0  # nothing applied
        for junk in ("AdvanceSlots", b"AdvanceSlots", None, 7):
            reply = service.dispatch(junk)
            assert isinstance(reply, ErrorReply) and reply.code == "protocol"

    def test_deprecated_aliases_are_gone(self):
        service = self._service()
        assert not hasattr(service, "dispatch_many")
        assert not hasattr(service, "dispatch_dict")
        # The unified names never warn.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error", DeprecationWarning)
            service.dispatch(AdvanceSlots(slots=1))
            service.dispatch_json(to_dict(AdvanceSlots(slots=1)))
