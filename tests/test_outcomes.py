"""Coverage of the outcome containers' accessors and invariants."""

from __future__ import annotations

import pytest

from repro import (
    AdditiveBid,
    SubstitutableBid,
    run_addoff,
    run_addon,
    run_shapley,
    run_substoff,
    run_subston,
)


class TestShapleyResultAccessors:
    def test_revenue_and_payment_defaults(self):
        result = run_shapley(10.0, {1: 10.0, 2: 3.0})
        assert result.revenue == pytest.approx(10.0)
        assert result.payment(2) == 0.0
        assert result.payment("ghost") == 0.0
        assert result.implemented


class TestAddOffOutcomeAccessors:
    def test_grants_and_totals(self):
        outcome = run_addoff(
            {"a": 10.0, "b": 99.0},
            {"a": {1: 6.0, 2: 6.0}, "b": {1: 5.0}},
        )
        assert outcome.grants == frozenset({(1, "a"), (2, "a")})
        assert outcome.implemented == frozenset({"a"})
        assert outcome.total_cost == pytest.approx(10.0)
        assert outcome.total_payment == pytest.approx(10.0)
        assert outcome.payment_for(1, "b") == 0.0


class TestAddOnOutcomeAccessors:
    @pytest.fixture()
    def outcome(self):
        return run_addon(
            10.0,
            {
                1: AdditiveBid.over(1, [12.0]),
                2: AdditiveBid.over(2, [8.0]),
            },
        )

    def test_slot_indexing(self, outcome):
        assert outcome.serviced(0) == frozenset()
        assert outcome.serviced(1) == frozenset({1})
        assert outcome.cumulative(2) == frozenset({1, 2})
        # User 1 departed after slot 1 but stays in the cumulative set.
        assert outcome.serviced(2) == frozenset({2})

    def test_totals(self, outcome):
        assert outcome.total_cost == pytest.approx(10.0)
        assert outcome.total_payment == pytest.approx(10.0 + 5.0)
        assert outcome.implemented

    def test_unimplemented_total_cost_zero(self):
        outcome = run_addon(100.0, {1: AdditiveBid.over(1, [1.0])})
        assert outcome.total_cost == 0.0
        assert not outcome.implemented


class TestSubstOutcomeAccessors:
    def test_substoff_serviced_and_shares(self):
        outcome = run_substoff(
            {"a": 10.0, "b": 10.0},
            {1: {"a": 12.0}, 2: {"b": 4.0}},
        )
        assert outcome.serviced("a") == frozenset({1})
        assert outcome.serviced("b") == frozenset()
        assert outcome.shares == {"a": pytest.approx(10.0)}
        assert outcome.total_cost == pytest.approx(10.0)

    def test_subston_serviced_time_filtered(self):
        outcome = run_subston(
            {"a": 10.0},
            {
                1: SubstitutableBid.over(1, [12.0, 0.0], {"a"}),
                2: SubstitutableBid.over(2, [6.0], {"a"}),
            },
        )
        assert outcome.serviced("a", 1) == frozenset({1})
        assert outcome.serviced("a", 2) == frozenset({1, 2})
        assert outcome.payment("ghost") == 0.0
        assert outcome.total_cost == pytest.approx(10.0)
        assert outcome.shares_by_slot[1] == {"a": pytest.approx(10.0)}
        assert outcome.shares_by_slot[2] == {"a": pytest.approx(5.0)}
