"""The observability subsystem: registry semantics, percentile identity
with the old bench math, exposition validity, fixed-clock determinism,
spans, the MetricsRequest/MetricsReply envelopes, and metric continuity
across PricingService recovery."""

from __future__ import annotations

import json
import math

import pytest
from promparse import ExpositionError, parse_exposition

from repro import obs
from repro.gateway import (
    AdvanceSlots,
    MetricsReply,
    MetricsRequest,
    PricingService,
    SubmitBids,
    from_dict,
    to_dict,
)
from repro.obs import (
    DEFAULT_BUCKETS,
    DEFAULT_MAX_SERIES,
    MetricsRegistry,
    SpanRecorder,
    read_spans,
    render_prometheus,
)


def ticker(step: float = 1.0, start: float = 0.0):
    """A deterministic clock: start, start+step, start+2*step, ..."""
    state = {"now": start - step}

    def clock() -> float:
        state["now"] += step
        return state["now"]

    return clock


@pytest.fixture(autouse=True)
def _clean_global_registry():
    obs.reset()
    obs.enable()
    yield
    obs.reset()
    obs.enable()


# --------------------------------------------------------------- registry --


class TestRegistrySemantics:
    def test_counter_counts_and_refuses_to_go_down(self):
        registry = MetricsRegistry()
        hits = registry.counter("t_hits_total", "hits", ("tier",))
        hits.labels(tier="l1").inc()
        hits.labels(tier="l1").inc(2.5)
        hits.labels(tier="l2").inc(4)
        assert hits.labels(tier="l1").value == 3.5
        assert hits.labels(tier="l2").value == 4.0
        with pytest.raises(ValueError, match="only go up"):
            hits.labels(tier="l1").inc(-1)

    def test_gauge_goes_both_ways(self):
        registry = MetricsRegistry()
        depth = registry.gauge("t_depth", "queue depth")
        depth.set(7)
        depth.inc(3)
        depth.dec(9)
        assert depth.value == 1.0
        depth.set(-2.5)
        assert depth.value == -2.5

    def test_labelled_family_rejects_wrong_and_default_access(self):
        registry = MetricsRegistry()
        c = registry.counter("t_total", "", ("kind",))
        with pytest.raises(ValueError, match="takes labels"):
            c.labels(knd="x")
        with pytest.raises(ValueError, match="takes labels"):
            c.labels()
        with pytest.raises(ValueError, match="address a series"):
            c.inc()  # label-less convenience needs a label-less family

    def test_invalid_names_and_labels_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("0bad")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("t_ok", "", ("le gal",))
        with pytest.raises(ValueError, match="duplicate label names"):
            registry.counter("t_ok2", "", ("a", "a"))

    def test_cardinality_bound_is_an_error_not_a_clamp(self):
        registry = MetricsRegistry()
        c = registry.counter("t_bound", "", ("user",), max_series=3)
        for i in range(3):
            c.labels(user=f"u{i}").inc()
        with pytest.raises(ValueError, match="cardinality bound"):
            c.labels(user="u3")
        assert registry.counter("t_free", "").max_series == DEFAULT_MAX_SERIES

    def test_register_is_get_or_create_and_conflicts_raise(self):
        registry = MetricsRegistry()
        first = registry.counter("t_same", "one", ("k",))
        again = registry.counter("t_same", "different help ok", ("k",))
        assert again is first
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("t_same")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("t_same", "", ("other",))
        h = registry.histogram("t_h_seconds", buckets=(1.0, 2.0))
        assert registry.histogram("t_h_seconds", buckets=(1.0, 2.0)) is h
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("t_h_seconds", buckets=(1.0, 3.0))

    def test_histogram_bucket_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="at least one bucket"):
            registry.histogram("t_empty", buckets=())
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("t_unsorted", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("t_dup", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="implicit"):
            registry.histogram("t_inf", buckets=(1.0, math.inf))

    def test_reset_drops_series_but_keeps_registrations(self):
        registry = MetricsRegistry()
        c = registry.counter("t_keep_total", "", ("k",))
        c.labels(k="a").inc(5)
        registry.reset()
        assert registry.counter("t_keep_total", "", ("k",)) is c
        assert registry.snapshot()["t_keep_total"]["series"] == []
        assert c.labels(k="a").value == 0.0  # a fresh child

    def test_disabled_registry_mutates_nothing_and_skips_the_clock(self):
        def forbidden_clock() -> float:
            raise AssertionError("a disabled timer must never read the clock")

        registry = MetricsRegistry(clock=forbidden_clock)
        registry.enabled = False
        c = registry.counter("t_off_total")
        g = registry.gauge("t_off")
        h = registry.histogram("t_off_seconds")
        c.inc(10)
        g.set(10)
        h.observe(10)
        with h.time():
            pass
        assert c.value == 0.0 and g.value == 0.0 and h.count == 0
        registry.enabled = True
        with pytest.raises(AssertionError, match="never read"):
            with h.time():
                pass

    def test_wire_form_is_tuples_and_scalars_only(self):
        registry = MetricsRegistry()
        registry.counter("t_a_total", "", ("k",)).labels(k="x").inc(2)
        registry.histogram("t_b_seconds", buckets=(0.5, 1.0)).observe(0.7)
        wire = registry.wire()
        assert isinstance(wire, tuple)

        def all_plain(value) -> bool:
            if isinstance(value, tuple):
                return all(all_plain(v) for v in value)
            return isinstance(value, (str, int, float))

        assert all_plain(wire)
        entries = {entry[0]: entry for entry in wire}
        name, kind, labels, value = entries["t_a_total"]
        assert kind == "counter" and labels == (("k", "x"),) and value == 2.0
        _, kind, labels, (buckets, counts, total, count) = entries["t_b_seconds"]
        assert kind == "histogram" and buckets == (0.5, 1.0)
        assert counts == (0, 1, 0) and total == 0.7 and count == 1


# ------------------------------------------------------------- percentiles --


class TestPercentileIdentity:
    """The property that let bench_server.py swap its sorted-list math
    for the shared histogram: on samples that sit on bucket bounds the
    two answer identically, at every rank."""

    @staticmethod
    def _old_math(samples, q):
        merged = sorted(samples)
        return merged[min(len(merged) - 1, int(len(merged) * q))]

    def test_identical_to_sorted_list_on_a_fixed_sample(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t_lat_seconds")
        bounds = histogram.buckets
        fixed = (
            [bounds[2]] * 10 + [bounds[5]] * 49 + [bounds[11]] * 40
            + [bounds[20]] * 1
        )
        for value in fixed:
            histogram.observe(value)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert histogram.percentile(q) == self._old_math(fixed, q), q

    def test_p50_matches_the_old_len_over_two_rule(self):
        # bench_server's p50 was merged[len // 2]; the shared rank rule
        # int(len * 0.5) is the same index at every length.
        for n in (1, 2, 3, 10, 101):
            assert min(n - 1, int(n * 0.5)) == min(n - 1, n // 2)

    def test_overflow_rank_returns_the_tracked_max(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t_over_seconds", buckets=(1.0,))
        histogram.observe(5.0)
        histogram.observe(250.0)
        assert histogram.percentile(0.99) == 250.0

    def test_empty_histogram_answers_zero(self):
        registry = MetricsRegistry()
        assert registry.histogram("t_none_seconds").percentile(0.5) == 0.0

    def test_q_out_of_range_raises(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t_q_seconds")
        with pytest.raises(ValueError, match="in \\[0, 1\\]"):
            histogram.percentile(1.5)


# -------------------------------------------------------------- exposition --


class TestPrometheusExposition:
    def test_render_parses_as_strict_exposition(self):
        registry = MetricsRegistry(clock=ticker(0.001))
        hits = registry.counter("t_hits_total", "Cache hits.", ("tier",))
        hits.labels(tier="l1").inc(3)
        hits.labels(tier="l2").inc(1)
        registry.gauge("t_depth", "Depth.").set(4)
        lat = registry.histogram("t_lat_seconds", "Latency.")
        for _ in range(7):
            with lat.time():
                pass
        types, samples = parse_exposition(render_prometheus(registry))
        assert types == {
            "t_depth": "gauge",
            "t_hits_total": "counter",
            "t_lat_seconds": "histogram",
        }
        by_name = {}
        for sample in samples:
            by_name.setdefault(sample.name, []).append(sample)
        assert [s.value for s in by_name["t_hits_total"]] == [3.0, 1.0]
        (count,) = by_name["t_lat_seconds_count"]
        assert count.value == 7.0
        infs = [s for s in by_name["t_lat_seconds_bucket"]
                if s.labels["le"] == "+Inf"]
        assert infs[0].value == 7.0

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        c = registry.counter("t_esc_total", "", ("path",))
        c.labels(path='a"b\\c\nd').inc()
        types, samples = parse_exposition(render_prometheus(registry))
        assert samples[0].labels["path"] == 'a"b\\c\nd'

    def test_the_parser_itself_rejects_invalid_documents(self):
        with pytest.raises(ExpositionError, match="end with a newline"):
            parse_exposition("t_total 1")
        with pytest.raises(ExpositionError, match="before its TYPE"):
            parse_exposition("t_total 1\n")
        with pytest.raises(ExpositionError, match="unknown kind"):
            parse_exposition("# TYPE t_total flavor\n")
        with pytest.raises(ExpositionError, match="unparseable value"):
            parse_exposition("# TYPE t_total counter\nt_total one\n")
        with pytest.raises(ExpositionError, match="cumulative"):
            parse_exposition(
                "# TYPE t_h histogram\n"
                't_h_bucket{le="1"} 5\n'
                't_h_bucket{le="+Inf"} 3\n'
                "t_h_sum 1\n"
                "t_h_count 3\n"
            )
        with pytest.raises(ExpositionError, match="end at le"):
            parse_exposition(
                "# TYPE t_h histogram\n"
                't_h_bucket{le="1"} 3\n'
                "t_h_sum 1\nt_h_count 3\n"
            )

    def test_global_render_covers_the_instrumented_stack(self):
        service = PricingService({"idx": 40.0}, horizon=3)
        service.dispatch(SubmitBids(tenant="a", bids=(("idx", 1, (50.0,)),)))
        service.dispatch(AdvanceSlots(slots=1))
        types, samples = parse_exposition(obs.render())
        assert types["repro_dispatch_total"] == "counter"
        assert types["repro_dispatch_seconds"] == "histogram"
        kinds = {
            s.labels["kind"] for s in samples if s.name == "repro_dispatch_total"
        }
        assert {"SubmitBids", "AdvanceSlots"} <= kinds


# ------------------------------------------------------------- determinism --


class TestFixedClockDeterminism:
    @staticmethod
    def _run_workload(registry: MetricsRegistry) -> None:
        requests = registry.counter("t_req_total", "requests", ("endpoint",))
        depth = registry.gauge("t_depth", "queue")
        latency = registry.histogram("t_lat_seconds", "latency", ("endpoint",))
        for i in range(50):
            endpoint = f"/v1/{'bids' if i % 3 else 'slots'}"
            requests.labels(endpoint=endpoint).inc()
            depth.set(i % 7)
            with latency.labels(endpoint=endpoint).time():
                pass

    def test_two_identical_runs_snapshot_bit_identically(self):
        first = MetricsRegistry(clock=ticker(0.0017))
        second = MetricsRegistry(clock=ticker(0.0017))
        self._run_workload(first)
        self._run_workload(second)
        a, b = first.snapshot(), second.snapshot()
        assert a == b
        # Bit-identical, not merely approximately equal: the snapshots
        # serialize to the same bytes.
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert first.wire() == second.wire()
        assert render_prometheus(first) == render_prometheus(second)

    def test_different_clocks_show_up_in_the_snapshot(self):
        first = MetricsRegistry(clock=ticker(0.001))
        second = MetricsRegistry(clock=ticker(0.002))
        self._run_workload(first)
        self._run_workload(second)
        assert first.snapshot() != second.snapshot()

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry(clock=ticker())
        self._run_workload(registry)
        assert json.loads(json.dumps(registry.snapshot())) is not None


# ------------------------------------------------------------------- spans --


class TestSpans:
    def test_span_records_begin_end_elapsed_and_fields(self):
        spans = SpanRecorder(clock=ticker(1.0))
        with spans.span("checkpoint", seq=9):
            pass
        (row,) = spans.rows()
        assert row["span"] == "checkpoint" and row["seq"] == 9
        assert row["elapsed"] == row["end"] - row["begin"] == 1.0

    def test_span_records_even_when_the_body_raises(self):
        spans = SpanRecorder(clock=ticker(1.0))
        with pytest.raises(RuntimeError):
            with spans.span("recover"):
                raise RuntimeError("mid-recovery crash")
        assert spans.rows()[0]["span"] == "recover"

    def test_reserved_fields_are_rejected(self):
        spans = SpanRecorder(clock=ticker())
        with pytest.raises(ValueError, match="reserved"):
            with spans.span("x", elapsed=1.0):
                pass

    def test_disabled_recorder_records_nothing_and_skips_the_clock(self):
        def forbidden_clock() -> float:
            raise AssertionError("clock")

        spans = SpanRecorder(clock=forbidden_clock)
        spans.enabled = False
        with spans.span("quiet"):
            pass
        assert spans.rows() == ()

    def test_ring_is_bounded(self):
        spans = SpanRecorder(maxlen=3, clock=ticker())
        for i in range(10):
            with spans.span(f"s{i}"):
                pass
        assert [r["span"] for r in spans.rows()] == ["s7", "s8", "s9"]

    def test_jsonl_mirror_round_trips(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        spans = SpanRecorder(path, clock=ticker(0.5))
        with spans.span("rotate", segment="wal-1-9.jsonl"):
            pass
        with spans.span("checkpoint", seq=4):
            pass
        rows = read_spans(path)
        assert [r["span"] for r in rows] == ["rotate", "checkpoint"]
        assert rows == list(spans.rows())

    def test_service_checkpoint_and_recover_emit_spans(self, tmp_path):
        obs.SPANS.clear()
        service = PricingService({"idx": 40.0}, horizon=3)
        service.attach_wal(tmp_path / "wal")
        service.dispatch(SubmitBids(tenant="a", bids=(("idx", 1, (50.0,)),)))
        service.checkpoint()
        service.close()
        recovered = PricingService.recover(tmp_path / "wal")
        recovered.close()
        names = [row["span"] for row in obs.SPANS.rows()]
        assert "checkpoint" in names and "recover" in names


# --------------------------------------------------------------- envelopes --


class TestMetricsEnvelopes:
    def test_metrics_request_round_trips(self):
        wire = json.loads(json.dumps(to_dict(MetricsRequest())))
        assert from_dict(wire) == MetricsRequest()

    def test_dispatch_returns_the_registry_wire_form(self):
        service = PricingService({"idx": 40.0}, horizon=3)
        service.dispatch(SubmitBids(tenant="a", bids=(("idx", 1, (50.0,)),)))
        reply = service.dispatch(MetricsRequest())
        assert isinstance(reply, MetricsReply)
        names = {entry[0] for entry in reply.metrics}
        assert "repro_dispatch_total" in names
        # The reply mirrors the registry exactly (modulo the metrics the
        # in-flight MetricsRequest itself bumped before the read).
        entries = {
            (e[0], e[2]): e for e in obs.REGISTRY.wire()
        }
        for entry in reply.metrics:
            name, kind, labels, _value = entry
            assert (name, labels) in entries
            assert entries[(name, labels)][1] == kind

    def test_metrics_reply_round_trips_exactly(self):
        service = PricingService({"idx": 40.0}, horizon=3)
        service.dispatch(SubmitBids(tenant="a", bids=(("idx", 1, (50.0,)),)))
        service.dispatch(AdvanceSlots(slots=1))
        reply = service.dispatch(MetricsRequest())
        wire = json.loads(json.dumps(to_dict(reply)))
        assert from_dict(wire) == reply

    def test_metrics_request_is_wal_replay_safe(self, tmp_path):
        service = PricingService({"idx": 40.0}, horizon=3)
        service.attach_wal(tmp_path / "wal")
        service.dispatch(SubmitBids(tenant="a", bids=(("idx", 1, (50.0,)),)))
        assert isinstance(service.dispatch(MetricsRequest()), MetricsReply)
        service.dispatch(AdvanceSlots(slots=3))
        report = service.report()
        service.close()
        recovered = PricingService.recover(tmp_path / "wal")
        assert recovered.report().implemented == report.implemented
        assert recovered.report().ledger == report.ledger
        recovered.close()


# -------------------------------------------------------------- continuity --


class TestRecoveryContinuity:
    def test_dispatch_counters_never_go_backwards_across_recover(
        self, tmp_path
    ):
        family = obs.REGISTRY.counter(
            "repro_dispatch_total", "", ("kind",)
        )
        service = PricingService({"idx": 40.0}, horizon=4)
        service.attach_wal(tmp_path / "wal")
        service.dispatch(SubmitBids(tenant="a", bids=(("idx", 1, (50.0,)),)))
        service.dispatch(AdvanceSlots(slots=1))
        before = family.labels(kind="SubmitBids").value
        advance_before = family.labels(kind="AdvanceSlots").value
        assert before >= 1 and advance_before >= 1
        service.close()

        recovered = PricingService.recover(tmp_path / "wal")
        # Recovery replays the WAL through dispatch: the process-wide
        # counter keeps climbing, it never resets with the service.
        mid = family.labels(kind="SubmitBids").value
        assert mid >= before
        recovered.dispatch(
            SubmitBids(tenant="b", bids=(("idx", 2, (50.0,)),))
        )
        assert family.labels(kind="SubmitBids").value > mid
        recovered.close()
