"""Deterministic crash injection for the durable gateway.

The service exposes one seam — ``service.wal_probe`` — fired at every
WAL/apply/checkpoint boundary:

========================= ==============================================
``"wal:append"``          just before a record's bytes are written
``"wal:appended"``        just after the record is fsync'd (durable)
``"apply:done"``          after a dispatch's effects applied
``"checkpoint:begin"``    before state capture starts
``"checkpoint:written"``  checkpoint temp file fsync'd, not yet renamed
``"checkpoint:done"``     checkpoint atomically in place
========================= ==============================================

:class:`CrashPoint` counts probe firings and raises
:class:`SimulatedCrash` at a chosen index, so "kill the service at every
boundary" is just iterating that index over the workload's probe count.
``SimulatedCrash`` derives from :class:`BaseException` on purpose: the
gateway's total-dispatch contract catches :class:`ReproError`, and a
crash must tear straight through it like ``KeyboardInterrupt`` would.

This module is a helper library for ``tests/test_wal_recovery.py``, not
a test module itself.
"""

from __future__ import annotations

from repro.gateway import codec
from repro.gateway.envelopes import to_dict
from repro.gateway.wal.recovery import read_log

__all__ = [
    "SimulatedCrash",
    "CrashPoint",
    "run_steps",
    "run_until_crash",
    "durable_requests",
    "continuation",
    "fingerprint",
]


class SimulatedCrash(BaseException):
    """The process dies here. Not a ReproError: nothing may catch it."""


class CrashPoint:
    """A probe callable that kills the service at firing number ``at``.

    ``at=None`` never fires (clean run); ``fired`` records every stage
    seen, so a workload's total probe count — and therefore the grid of
    injectable crash points — is ``len(CrashPoint(None).fired)`` after a
    clean run of the same workload.
    """

    def __init__(self, at: int | None) -> None:
        self.at = at
        self.fired: list[str] = []
        self.crashed_stage: str | None = None

    def __call__(self, stage: str) -> None:
        index = len(self.fired)
        self.fired.append(stage)
        if self.at is not None and index == self.at:
            self.crashed_stage = stage
            raise SimulatedCrash(f"injected crash at probe {index} ({stage})")


def run_steps(service, steps) -> list:
    """Drive one workload; returns wire-form reply dicts in step order.

    A list step goes through a batched ``dispatch`` (the bulk path); any other
    step through ``dispatch``. Replies are materialized to dictionaries
    immediately so lazy acks cannot observe later state.
    """
    replies: list = []
    for step in steps:
        if isinstance(step, list):
            replies.extend(
                to_dict(reply) for reply in service.dispatch(list(step))
            )
        else:
            replies.append(to_dict(service.dispatch(step)))
    return replies


def run_until_crash(service, steps) -> tuple[list, bool]:
    """Like :func:`run_steps` but absorbs the injected crash.

    Returns ``(replies_so_far, crashed)``. After a crash the service
    object must be treated as dead — exactly like a real process kill.
    """
    try:
        return run_steps(service, steps), False
    except SimulatedCrash:
        return [], True


def durable_requests(wal_dir) -> int:
    """How many request envelopes the WAL holds durably (batch-aware).

    Reads the whole directory (rotated segments plus the active file) so
    it stays honest for services running with ``retain_checkpoints``.
    """
    log = read_log(wal_dir)
    return sum(len(record.requests) for record in log.records)


def continuation(steps, done: int) -> list:
    """The workload tail after ``done`` durable request envelopes.

    Walks ``steps`` counting flattened envelopes; a list step that was
    only partially durable resumes mid-list (that can only happen when
    the crash hit before the run's atomic WAL record, i.e. ``done`` lands
    on the step's start — but slicing handles either way).
    """
    seen = 0
    for index, step in enumerate(steps):
        width = len(step) if isinstance(step, list) else 1
        if seen + width > done:
            tail = list(steps[index + 1 :])
            if isinstance(step, list):
                remainder = step[done - seen :]
                if remainder:
                    tail.insert(0, remainder)
            elif done == seen:
                tail.insert(0, step)
            return tail
        seen += width
    return []


def fingerprint(service) -> dict:
    """Every observable durable surface, in comparable (encoded) form."""
    out = {
        "db": codec.encode(service.db),
        "log": codec.encode(service.log),
        "db_epoch": service.db.epoch,
    }
    if service.fleet is not None:
        out["slot"] = service.fleet.slot
        out["fleet_epoch"] = service.fleet.epoch
        out["ledger"] = codec.encode(service.fleet.ledger)
        out["events"] = codec.encode(service.fleet.events)
    return out
