"""The CI bench-regression gate: comparison rules and exit codes."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def gate():
    """Import benchmarks/check_regression.py as a module."""
    if str(BENCHMARKS) not in sys.path:
        sys.path.insert(0, str(BENCHMARKS))
    spec = importlib.util.spec_from_file_location(
        "check_regression", BENCHMARKS / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def entry(name, speedup, n=1000, smoke=False, floor=None):
    return {
        "benchmark": name,
        "speedup": speedup,
        "n": n,
        "seed": 1,
        "floor": floor,
        "smoke": smoke,
    }


class TestCheckEntry:
    def test_same_scale_within_tolerance_passes(self, gate):
        ok, detail = gate.check_entry(
            "b", entry("b", 9.0), {"b": entry("b", 10.0)}, 0.2
        )
        assert ok, detail

    def test_same_scale_regression_fails(self, gate):
        ok, detail = gate.check_entry(
            "b", entry("b", 7.9), {"b": entry("b", 10.0)}, 0.2
        )
        assert not ok
        assert "regressed" in detail

    def test_scale_mismatch_is_sanity_only(self, gate):
        ok, detail = gate.check_entry(
            "b", entry("b", 2.0, n=100, smoke=True), {"b": entry("b", 10.0)}, 0.2
        )
        assert ok
        assert "sanity" in detail

    def test_smoke_wallclock_never_strict(self, gate):
        baselines = {"b@smoke": entry("b", 10.0, smoke=True)}
        ok, _ = gate.check_entry(
            "b", entry("b", 2.0, smoke=True), baselines, 0.2
        )
        assert ok, "smoke wall-clock timings must not gate"

    def test_smoke_metered_ratio_is_strict(self, gate):
        name = gate.SCALE_INDEPENDENT[0]
        baselines = {f"{name}@smoke": entry(name, 10.0, smoke=True)}
        ok, detail = gate.check_entry(
            name, entry(name, 7.0, smoke=True), baselines, 0.2
        )
        assert not ok
        assert "regressed" in detail

    def test_full_run_without_baseline_fails(self, gate):
        ok, detail = gate.check_entry("new", entry("new", 5.0), {}, 0.2)
        assert not ok
        assert "baseline" in detail

    def test_full_run_under_own_floor_fails_even_unpaired(self, gate):
        baselines = {"b": entry("b", 10.0, n=999_999)}
        ok, detail = gate.check_entry(
            "b", entry("b", 2.0, floor=3.0), baselines, 0.2
        )
        assert not ok
        assert "floor" in detail

    def test_nonpositive_speedup_fails(self, gate):
        ok, _ = gate.check_entry("b", entry("b", 0.0), {"b": entry("b", 1.0)}, 0.2)
        assert not ok


class TestMain:
    def run_gate(self, gate, tmp_path, fresh, baseline_results):
        results = tmp_path / "results"
        results.mkdir()
        for item in fresh:
            (results / f"{item['benchmark']}.json").write_text(json.dumps(item))
        baseline = tmp_path / "BASE.json"
        baseline.write_text(json.dumps({"results": baseline_results}))
        return gate.main(
            ["--results", str(results), "--baselines", str(baseline)]
        )

    def test_passing_run(self, gate, tmp_path):
        code = self.run_gate(
            gate, tmp_path,
            [entry("a", 10.0), entry("b", 5.0)],
            {"a": entry("a", 10.0), "b": entry("b", 4.5)},
        )
        assert code == 0

    def test_regressed_run_fails(self, gate, tmp_path):
        code = self.run_gate(
            gate, tmp_path,
            [entry("a", 5.0)],
            {"a": entry("a", 10.0)},
        )
        assert code == 1

    def test_no_results_is_an_error(self, gate, tmp_path):
        (tmp_path / "results").mkdir()
        code = gate.main(
            [
                "--results", str(tmp_path / "results"),
                "--baselines", str(tmp_path / "BASE.json"),
            ]
        )
        assert code == 2

    def test_unparseable_fresh_result_fails(self, gate, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "bad.json").write_text("{not json")
        baseline = tmp_path / "BASE.json"
        baseline.write_text(json.dumps({"results": {}}))
        assert gate.main(
            ["--results", str(results), "--baselines", str(baseline)]
        ) == 1

    def test_gate_passes_against_committed_baselines_at_smoke(self, gate, tmp_path):
        """The acceptance scenario: smoke-scale fresh results checked
        against this repository's real committed trajectories."""
        fresh = [
            entry("columnar_engine", 1.5, n=2_000, smoke=True),
            entry("advisor_loop", 29.8, n=2_000, smoke=True, floor=3.0),
        ]
        results = tmp_path / "results"
        results.mkdir()
        for item in fresh:
            (results / f"{item['benchmark']}.json").write_text(json.dumps(item))
        root = BENCHMARKS.parent
        baselines = [
            str(root / "BENCH_PR4.json"), str(root / "BENCH_PR3.json"),
        ]
        assert gate.main(
            ["--results", str(results), "--baselines", *baselines]
        ) == 0
