"""A strict Prometheus text-exposition (format 0.0.4) parser for tests.

``parse_exposition`` validates the whole document — line grammar, name
and label syntax, escape sequences, ``# TYPE`` declarations preceding
their samples, histogram bucket series that are cumulative and end at
``+Inf`` consistent with ``_count`` — and raises :class:`ExpositionError`
on the first violation. Tests feed it ``repro.obs.render_prometheus``
output (and the server's ``GET /v1/metrics`` body) so "valid Prometheus"
is an executable claim, not a string containment check.
"""

from __future__ import annotations

import math
import re

__all__ = ["ExpositionError", "Sample", "parse_exposition"]

_METRIC_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
_SAMPLE_RE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)\Z"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<label>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*'
)
_KINDS = ("counter", "gauge", "histogram", "summary", "untyped")
_ESCAPES = {"\\\\": "\\", r"\"": '"', r"\n": "\n"}


class ExpositionError(AssertionError):
    """The text is not valid exposition format."""


class Sample:
    """One sample line: ``name``, ``labels`` dict, float ``value``."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict, value: float) -> None:
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Sample({self.name!r}, {self.labels!r}, {self.value!r})"


def _unescape(text: str, line: str) -> str:
    out = []
    i = 0
    while i < len(text):
        if text[i] == "\\":
            pair = text[i : i + 2]
            if pair not in _ESCAPES:
                raise ExpositionError(f"bad escape {pair!r} in: {line}")
            out.append(_ESCAPES[pair])
            i += 2
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def _parse_value(text: str, line: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ExpositionError(f"unparseable value {text!r} in: {line}") from None


def _parse_labels(raw: str, line: str) -> dict:
    labels: dict = {}
    pos = 0
    while pos < len(raw):
        match = _LABEL_PAIR_RE.match(raw, pos)
        if match is None:
            raise ExpositionError(f"bad label syntax in: {line}")
        label = match.group("label")
        if label in labels:
            raise ExpositionError(f"duplicate label {label!r} in: {line}")
        labels[label] = _unescape(match.group("value"), line)
        pos = match.end()
        if pos < len(raw):
            if raw[pos] != ",":
                raise ExpositionError(f"bad label separator in: {line}")
            pos += 1
    return labels


def _base_name(sample_name: str, types: dict) -> str:
    """The family a sample belongs to, honoring histogram suffixes."""
    for suffix in ("_bucket", "_sum", "_count"):
        base = sample_name[: -len(suffix)]
        if sample_name.endswith(suffix) and types.get(base) == "histogram":
            return base
    return sample_name


def _check_histogram(name: str, samples: list) -> None:
    buckets = [s for s in samples if s.name == f"{name}_bucket"]
    counts = [s for s in samples if s.name == f"{name}_count"]
    sums = [s for s in samples if s.name == f"{name}_sum"]
    series: dict = {}
    for sample in buckets:
        if "le" not in sample.labels:
            raise ExpositionError(f"{name}_bucket sample without an le label")
        key = tuple(
            sorted((k, v) for k, v in sample.labels.items() if k != "le")
        )
        series.setdefault(key, []).append(sample)
    count_by_key = {
        tuple(sorted(s.labels.items())): s.value for s in counts
    }
    sum_keys = {tuple(sorted(s.labels.items())) for s in sums}
    if set(count_by_key) != sum_keys:
        raise ExpositionError(f"{name}: _sum and _count series disagree")
    for key, rows in series.items():
        les = [row.labels["le"] for row in rows]
        if les[-1] != "+Inf":
            raise ExpositionError(
                f"{name}{dict(key)}: bucket series must end at le=+Inf"
            )
        bounds = [_parse_value(le, f"{name} le") for le in les]
        if bounds != sorted(bounds):
            raise ExpositionError(f"{name}{dict(key)}: le bounds not sorted")
        values = [row.value for row in rows]
        if values != sorted(values):
            raise ExpositionError(
                f"{name}{dict(key)}: bucket counts are not cumulative"
            )
        if key not in count_by_key:
            raise ExpositionError(f"{name}{dict(key)}: buckets without _count")
        if values[-1] != count_by_key[key]:
            raise ExpositionError(
                f"{name}{dict(key)}: +Inf bucket {values[-1]} != "
                f"_count {count_by_key[key]}"
            )


def parse_exposition(text: str):
    """Parse and validate; returns ``(types, samples)`` where ``types``
    maps family name -> declared kind and ``samples`` is every sample in
    document order."""
    if not text.endswith("\n"):
        raise ExpositionError("exposition must end with a newline")
    types: dict = {}
    helps: dict = {}
    samples: list = []
    seen_families: set = set()
    for line in text.split("\n")[:-1]:
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _METRIC_RE.match(parts[2]):
                raise ExpositionError(f"bad HELP line: {line}")
            if parts[2] in helps:
                raise ExpositionError(f"duplicate HELP for {parts[2]!r}")
            helps[parts[2]] = parts[3] if len(parts) == 4 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _METRIC_RE.match(parts[2]):
                raise ExpositionError(f"bad TYPE line: {line}")
            if parts[3] not in _KINDS:
                raise ExpositionError(f"unknown kind {parts[3]!r}: {line}")
            if parts[2] in types:
                raise ExpositionError(f"duplicate TYPE for {parts[2]!r}")
            if parts[2] in seen_families:
                raise ExpositionError(
                    f"TYPE for {parts[2]!r} after its samples"
                )
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # comments are legal anywhere
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ExpositionError(f"unparseable sample line: {line}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", line)
        for label in labels:
            if not _LABEL_RE.match(label):  # pragma: no cover - regex-gated
                raise ExpositionError(f"bad label name {label!r} in: {line}")
        value = _parse_value(match.group("value"), line)
        base = _base_name(name, types)
        if base not in types:
            raise ExpositionError(f"sample before its TYPE: {line}")
        seen_families.add(base)
        samples.append(Sample(name, labels, value))
    for name, kind in types.items():
        if kind == "histogram":
            _check_histogram(
                name,
                [
                    s
                    for s in samples
                    if _base_name(s.name, types) == name
                ],
            )
    return types, samples
