"""Group strategyproofness probes.

The Shapley Value Mechanism is a Moulin mechanism with cross-monotonic
cost shares, which makes it *group* strategyproof: no coalition can
misreport so that every member is weakly better off and someone strictly
better (Moulin & Shenker 2001). These hypothesis probes check the claim on
random games and coalitions, plus the cross-monotonicity of the shares
themselves.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import run_shapley

TOL = 1e-9

values = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
games = st.dictionaries(st.integers(0, 7), values, min_size=2, max_size=8)
costs = st.floats(min_value=0.5, max_value=120.0, allow_nan=False)


def _utility(user, truth, result) -> float:
    return truth - result.payment(user) if user in result.serviced else 0.0


class TestGroupStrategyproofness:
    @settings(max_examples=300)
    @given(cost=costs, bids=games, data=st.data())
    def test_no_coalition_weakly_gains_with_strict_winner(self, cost, bids, data):
        users = sorted(bids, key=repr)
        coalition = data.draw(
            st.sets(st.sampled_from(users), min_size=1, max_size=len(users))
        )
        deviated = dict(bids)
        for member in coalition:
            deviated[member] = data.draw(values)

        honest = run_shapley(cost, bids)
        lied = run_shapley(cost, deviated)

        gains = [
            _utility(m, bids[m], lied) - _utility(m, bids[m], honest)
            for m in coalition
        ]
        all_weakly_better = all(g >= -TOL for g in gains)
        someone_strictly_better = any(g > 1e-6 for g in gains)
        assert not (all_weakly_better and someone_strictly_better), (
            f"coalition {sorted(coalition, key=repr)} profitably deviated: {gains}"
        )

    @settings(max_examples=300)
    @given(cost=costs, bids=games, data=st.data())
    def test_cross_monotonicity_of_shares(self, cost, bids, data):
        """Dropping users never lowers the survivors' Shapley share."""
        users = sorted(bids, key=repr)
        dropped = data.draw(
            st.sets(st.sampled_from(users), min_size=1, max_size=len(users) - 1)
        )
        sub_bids = {u: b for u, b in bids.items() if u not in dropped}

        full = run_shapley(cost, bids)
        sub = run_shapley(cost, sub_bids)
        if full.implemented and sub.implemented:
            assert sub.price >= full.price - TOL

    @settings(max_examples=200)
    @given(cost=costs, bids=games)
    def test_shares_depend_only_on_serviced_count(self, cost, bids):
        """The serviced set's shares equal cost / |S| — anonymity."""
        result = run_shapley(cost, bids)
        if result.implemented:
            expected = cost / len(result.serviced)
            for user in result.serviced:
                assert abs(result.payment(user) - expected) < 1e-6
