"""Unit tests for physical operators, indexes, views, and cost metering."""

from __future__ import annotations

import pytest

from repro import GameConfigError, QueryError
from repro.db import (
    Catalog,
    Col,
    Const,
    CostMeter,
    CostModel,
    Eq,
    Filter,
    GroupCount,
    HashIndex,
    HashJoin,
    In,
    IndexLookup,
    MaterializedView,
    Project,
    Schema,
    SeqScan,
    SortedIndex,
    Table,
)


@pytest.fixture()
def people():
    table = Table("people", Schema.of(pid="int", age="int", team="int"))
    table.extend([(1, 30, 0), (2, 25, 0), (3, 41, 1), (4, 25, 2), (5, 30, 1)])
    return table


class TestScanFilterProject:
    def test_seqscan_charges_bytes(self, people):
        meter = CostMeter()
        rows = SeqScan(people).materialize(meter)
        assert len(rows) == 5
        assert meter.scan_bytes == 5 * 24
        assert meter.counters["scan:people"] == 1.0

    def test_filter(self, people):
        meter = CostMeter()
        plan = Filter(SeqScan(people), Eq(Col("age"), Const(25)))
        rows = plan.materialize(meter)
        assert {r[0] for r in rows} == {2, 4}
        assert meter.rows_emitted == 2

    def test_filter_in(self, people):
        meter = CostMeter()
        plan = Filter(SeqScan(people), In(Col("pid"), {1, 5}))
        assert len(plan.materialize(meter)) == 2

    def test_project(self, people):
        meter = CostMeter()
        plan = Project(SeqScan(people), ["age"])
        rows = plan.materialize(meter)
        assert rows == [(30,), (25,), (41,), (25,), (30,)]
        assert plan.schema.names == ("age",)

    def test_project_requires_columns(self, people):
        with pytest.raises(QueryError):
            Project(SeqScan(people), [])

    def test_projection_does_not_reduce_scan_bytes(self, people):
        """Row-store semantics: scanning is charged at full row width."""
        meter = CostMeter()
        Project(SeqScan(people), ["pid"]).materialize(meter)
        assert meter.scan_bytes == 5 * people.schema.row_width


class TestJoinAndGroup:
    def test_hash_join(self, people):
        teams = Table("teams", Schema.of(tid="int", tname="str"))
        teams.extend([(0, "red"), (1, "blue"), (2, "green")])
        meter = CostMeter()
        plan = HashJoin(SeqScan(people), SeqScan(teams), "team", "tid")
        rows = plan.materialize(meter)
        assert len(rows) == 5
        names = {r[0]: r[-1] for r in rows}
        assert names[1] == "red"
        assert names[3] == "blue"
        assert plan.schema.names == ("pid", "age", "team", "tname")
        assert meter.probe_count == 5

    def test_join_key_dropped_from_right(self, people):
        teams = Table("teams", Schema.of(tid="int", tname="str"))
        teams.extend([(0, "red")])
        plan = HashJoin(SeqScan(people), SeqScan(teams), "team", "tid")
        assert "tid" not in plan.schema.names

    def test_group_count(self, people):
        meter = CostMeter()
        plan = GroupCount(SeqScan(people), "age")
        counts = dict(plan.materialize(meter))
        assert counts == {30: 2, 25: 2, 41: 1}
        assert plan.schema.names == ("age", "count")


class TestIndexes:
    def test_hash_index_lookup(self, people):
        meter = CostMeter()
        index = HashIndex(people, "age", meter)
        assert meter.build_bytes == 5 * 24
        rows = list(index.lookup(25, meter))
        assert {r[0] for r in rows} == {2, 4}
        assert list(index.lookup(99, meter)) == []

    def test_hash_index_contains(self, people):
        index = HashIndex(people, "pid")
        meter = CostMeter()
        assert index.contains(3, meter)
        assert not index.contains(30, meter)
        assert meter.probe_count == 2

    def test_index_lookup_operator(self, people):
        index = HashIndex(people, "pid")
        meter = CostMeter()
        rows = IndexLookup(index, [1, 3, 99]).materialize(meter)
        assert [r[0] for r in rows] == [1, 3]
        assert meter.probe_count == 3

    def test_sorted_index_range(self, people):
        index = SortedIndex(people, "age")
        meter = CostMeter()
        rows = list(index.range(25, 30, meter))
        assert sorted(r[0] for r in rows) == [1, 2, 4, 5]
        assert index.min_key() == 25
        assert index.max_key() == 41

    def test_sorted_index_open_range(self, people):
        index = SortedIndex(people, "age")
        meter = CostMeter()
        assert len(list(index.range(None, None, meter))) == 5

    def test_sorted_index_bad_range(self, people):
        index = SortedIndex(people, "age")
        with pytest.raises(QueryError):
            list(index.range(30, 25, CostMeter()))


class TestViewsAndCatalog:
    def test_projection_view(self, people):
        view = MaterializedView.projection_of("v", people, ["pid", "team"])
        view.refresh()
        assert len(view.table) == 5
        assert view.table.schema.names == ("pid", "team")
        assert view.byte_size == 5 * 16

    def test_unmaterialized_view_size_raises(self, people):
        view = MaterializedView.projection_of("v", people, ["pid"])
        with pytest.raises(QueryError):
            view.byte_size

    def test_view_refresh_sees_new_rows(self, people):
        view = MaterializedView.projection_of("v", people, ["pid"])
        view.refresh()
        people.insert((6, 50, 0))
        view.refresh()
        assert len(view.table) == 6

    def test_catalog_round_trip(self, people):
        catalog = Catalog()
        catalog.create_table(people)
        assert catalog.table("people") is people
        assert catalog.table_names == ["people"]
        with pytest.raises(QueryError):
            catalog.table("nope")

    def test_catalog_rejects_duplicates(self, people):
        catalog = Catalog()
        catalog.create_table(people)
        with pytest.raises(Exception):
            catalog.create_table(Table("people", people.schema))

    def test_catalog_views(self, people):
        catalog = Catalog()
        catalog.create_table(people)
        catalog.create_view(MaterializedView.projection_of("v", people, ["pid"]))
        assert catalog.has_view("v")
        assert catalog.view("v").is_materialized
        catalog.drop_view("v")
        assert not catalog.has_view("v")

    def test_catalog_indexes_cached(self, people):
        catalog = Catalog()
        catalog.create_table(people)
        first = catalog.create_hash_index("people", "pid")
        second = catalog.create_hash_index("people", "pid")
        assert first is second
        assert catalog.hash_index("people", "age") is None

    def test_drop_table_drops_indexes(self, people):
        catalog = Catalog()
        catalog.create_table(people)
        catalog.create_hash_index("people", "pid")
        catalog.drop_table("people")
        assert catalog.hash_index("people", "pid") is None


class TestCostModel:
    def test_units_weighting(self):
        meter = CostMeter()
        meter.charge_scan(10, 8)
        meter.charge_probe(2)
        meter.charge_build(5, 8)
        meter.emit(3)
        model = CostModel()
        expected = 80 * 1.0 + 2 * 32.0 + 40 * 2.0 + 3 * 4.0
        assert model.units(meter) == pytest.approx(expected)

    def test_calibration(self):
        meter = CostMeter()
        meter.charge_scan(1000, 8)
        model = CostModel().calibrated(60.0, meter)
        assert model.seconds(meter) == pytest.approx(60.0)
        assert model.minutes(meter) == pytest.approx(1.0)

    def test_calibration_requires_work(self):
        with pytest.raises(GameConfigError):
            CostModel().calibrated(60.0, CostMeter())

    def test_meter_merge_and_reset(self):
        a, b = CostMeter(), CostMeter()
        a.charge_scan(1, 8)
        b.charge_probe(3)
        b.bump("x", 2.0)
        a.merge(b)
        assert a.probe_count == 3
        assert a.counters["x"] == 2.0
        a.reset()
        assert a.scan_bytes == 0 and a.probe_count == 0 and a.counters == {}
