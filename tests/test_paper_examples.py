"""Exact reproductions of the paper's worked examples (Sections 3-6).

Every numbered example with concrete numbers is encoded here and asserted
exactly, so any behavioural drift in the mechanisms shows up as a failure
pointing at the paper text it contradicts.
"""

from __future__ import annotations

import pytest

from repro import (
    AdditiveBid,
    SubstitutableBid,
    run_addon,
    run_shapley,
    run_substoff,
    run_subston,
)
from repro.core import accounting


class TestExample2NaiveOnlineShapleyWouldFail:
    """Example 2: C_j = 100, theta_1 = (1,1,[101]), theta_2 = (1,2,[26,26]).

    The example motivates AddOn: a naive per-slot Shapley run lets user 2
    hide during slot 1 and free-ride in slot 2. AddOn's residual bids
    prevent that: whenever user 2 shows up she is charged a share.
    """

    COST = 100.0

    def test_truthful_play(self):
        bids = {
            1: AdditiveBid.over(1, [101.0]),
            2: AdditiveBid.over(1, [26.0, 26.0]),
        }
        outcome = run_addon(self.COST, bids)
        # At slot 1 residuals are 101 and 52; shares of 50 fit both users.
        assert outcome.cumulative(1) == frozenset({1, 2})
        assert outcome.payment(1) == pytest.approx(50.0)
        assert outcome.payment(2) == pytest.approx(50.0)
        # User 2's utility is 52 - 50 = 2, as in the paper.
        utility_2 = accounting.addon_user_utility(outcome, 2, bids[2])
        assert utility_2 == pytest.approx(2.0)

    def test_hiding_until_slot_2_does_not_free_ride(self):
        truthful = AdditiveBid.over(1, [26.0, 26.0])
        bids = {
            1: AdditiveBid.over(1, [101.0]),
            2: AdditiveBid.over(2, [26.0]),  # hides her slot-1 value
        }
        outcome = run_addon(self.COST, bids)
        # User 1 carries the full cost alone at slot 1...
        assert outcome.payment(1) == pytest.approx(100.0)
        # ...but under AddOn user 2 is *not* serviced for free at slot 2:
        # her residual 26 is below the share 100/2 = 50.
        assert 2 not in outcome.cumulative(2)
        assert outcome.payment(2) == pytest.approx(0.0)
        # Her deviation utility is 0, below her truthful utility of 2.
        utility_2 = accounting.addon_user_utility(outcome, 2, truthful)
        assert utility_2 == pytest.approx(0.0)


class TestExample3AddOnTrace:
    """Example 3: C_j = 100, four users; exact trace of CS and payments."""

    COST = 100.0

    @pytest.fixture()
    def bids(self):
        return {
            1: AdditiveBid.over(1, [101.0]),
            2: AdditiveBid.over(1, [16.0, 16.0, 16.0]),
            3: AdditiveBid.over(2, [26.0]),
            4: AdditiveBid.over(2, [26.0]),
        }

    def test_cumulative_sets(self, bids):
        outcome = run_addon(self.COST, bids)
        assert outcome.cumulative(1) == frozenset({1})
        assert outcome.cumulative(2) == frozenset({1, 2, 3, 4})
        assert outcome.cumulative(3) == frozenset({1, 2, 3, 4})

    def test_payments(self, bids):
        outcome = run_addon(self.COST, bids)
        assert outcome.payment(1) == pytest.approx(100.0)
        assert outcome.payment(2) == pytest.approx(25.0)
        assert outcome.payment(3) == pytest.approx(25.0)
        assert outcome.payment(4) == pytest.approx(25.0)
        # The cloud over-recovers: 175 collected against a cost of 100.
        assert outcome.total_payment == pytest.approx(175.0)

    def test_user_2_excluded_at_slot_1(self, bids):
        outcome = run_addon(self.COST, bids)
        # Her slot-1 residual is 48 < 100/2, so CS_j(1) excludes her.
        assert 2 not in outcome.cumulative(1)
        # At slot 2 there are four users and shares drop to 25.
        assert 2 in outcome.cumulative(2)

    def test_example_4_user_2_utility(self, bids):
        """Example 4: user 2 is serviced at slots 2,3 for value 32, pays 25."""
        outcome = run_addon(self.COST, bids)
        value = accounting.addon_realized_value(outcome, 2, bids[2])
        assert value == pytest.approx(32.0)
        assert accounting.addon_user_utility(outcome, 2, bids[2]) == pytest.approx(7.0)

    def test_example_4_overbid_helps_only_with_hindsight(self, bids):
        """Example 4: overbidding [17,17,17] services user 2 at all slots.

        With these *particular* future bids the deviation pays off (value 48,
        payment 25) — the paper uses this to motivate the model-free notion:
        if no future bids arrive, the same overbid loses money (checked in
        test_properties_truthfulness.py).
        """
        deviated = dict(bids)
        deviated[2] = AdditiveBid.over(1, [17.0, 17.0, 17.0])
        outcome = run_addon(self.COST, deviated)
        assert 2 in outcome.cumulative(1)
        assert outcome.payment(2) == pytest.approx(25.0)
        value = accounting.addon_realized_value(outcome, 2, bids[2])
        assert value == pytest.approx(48.0)

    def test_example_4_worst_case_of_overbid_is_negative(self):
        """If no new bids arrive, bidding >= 50 at slot 1 costs user 2 money."""
        bids = {
            1: AdditiveBid.over(1, [101.0]),
            2: AdditiveBid.over(1, [50.0, 0.0, 0.0]),  # overbid >= 50
        }
        truthful_2 = AdditiveBid.over(1, [16.0, 16.0, 16.0])
        outcome = run_addon(100.0, bids)
        assert outcome.payment(2) == pytest.approx(50.0)
        utility = accounting.addon_user_utility(outcome, 2, truthful_2)
        assert utility < 0  # 48 - 50 = -2 at best; here realized 16+16+16=48
        assert utility == pytest.approx(-2.0)


class TestExamples5And6SubstOff:
    """Examples 5/6: three optimizations, four users, two phases."""

    COSTS = {1: 60.0, 2: 180.0, 3: 100.0}

    @pytest.fixture()
    def bids(self):
        # (J_i, v_i) bids from Example 5, as bid matrices.
        return {
            1: {1: 100.0, 2: 100.0},
            2: {3: 101.0},
            3: {1: 60.0, 2: 60.0, 3: 60.0},
            4: {2: 70.0},
        }

    def test_phase_trace(self, bids):
        outcome = run_substoff(self.COSTS, bids)
        # Phase 1: optimization 1 has the lowest share 60/2 = 30, serving {1,3}.
        # Phase 2: optimization 3 serves {2}; user 4 gets nothing.
        assert outcome.implemented == (1, 3)
        assert outcome.serviced(1) == frozenset({1, 3})
        assert outcome.serviced(3) == frozenset({2})
        assert outcome.grants.get(4) is None

    def test_payments(self, bids):
        outcome = run_substoff(self.COSTS, bids)
        assert outcome.payment(1) == pytest.approx(30.0)
        assert outcome.payment(3) == pytest.approx(30.0)
        assert outcome.payment(2) == pytest.approx(100.0)
        assert outcome.payment(4) == pytest.approx(0.0)
        assert outcome.shares[1] == pytest.approx(30.0)
        assert outcome.shares[3] == pytest.approx(100.0)

    def test_example_7_underbid_loses_service(self, bids):
        """User 3 bidding below the share 30 is serviced nowhere."""
        cheat = dict(bids)
        cheat[3] = {1: 29.0, 2: 29.0, 3: 29.0}
        outcome = run_substoff(self.COSTS, cheat)
        assert outcome.grants.get(3) is None
        assert outcome.payment(3) == pytest.approx(0.0)

    def test_example_7_any_bid_above_share_changes_nothing(self, bids):
        for value in (30.0, 59.0, 60.0, 1000.0):
            cheat = dict(bids)
            cheat[3] = {1: value, 2: value, 3: value}
            outcome = run_substoff(self.COSTS, cheat)
            assert outcome.grants[3] == 1
            assert outcome.payment(3) == pytest.approx(30.0)

    def test_example_7_dropping_opt_1_can_only_hurt(self, bids):
        """Bidding ({2,3}, 60) strictly lowers user 3's utility.

        The paper's prose claims optimizations 1 and 2 tie at share 60, but
        overlooks that optimization 3 (cost 100, bidders {2: 101, 3: 60})
        reaches share 50 and wins phase 1. Either way the example's point
        stands: user 3 ends with utility 10 (grant at 50 for value 60),
        strictly below her truthful utility of 30.
        """
        cheat = dict(bids)
        cheat[3] = {2: 60.0, 3: 60.0}
        outcome = run_substoff(self.COSTS, cheat)
        assert outcome.implemented[0] == 3
        assert outcome.grants[3] == 3
        assert outcome.payment(3) == pytest.approx(50.0)
        utility = 60.0 - outcome.payment(3)
        assert utility < 30.0  # strictly below truthful play


class TestExample8SubstOnTrace:
    """Example 8: three optimizations, three users across three slots."""

    COSTS = {1: 60.0, 2: 100.0, 3: 50.0}

    @pytest.fixture()
    def bids(self):
        return {
            1: SubstitutableBid.over(1, [50.0, 50.0], {1, 2}),
            2: SubstitutableBid.over(2, [50.0, 50.0], {1, 2, 3}),
            3: SubstitutableBid.over(3, [100.0], {3}),
        }

    def test_trace(self, bids):
        outcome = run_subston(self.COSTS, bids)
        # t=1: optimization 1 implemented for user 1 (share 60).
        assert outcome.implemented_at[1] == 1
        assert outcome.grants[1] == 1
        assert outcome.granted_at[1] == 1
        # t=2: user 2 joins optimization 1; shares drop to 30; user 1 leaves
        # paying 30.
        assert outcome.grants[2] == 1
        assert outcome.granted_at[2] == 2
        assert outcome.payment(1) == pytest.approx(30.0)
        # t=3: optimization 3 implemented only for user 3 at 50; user 2 may
        # not switch and pays 30 at her departure.
        assert outcome.implemented_at[3] == 3
        assert outcome.grants[3] == 3
        assert outcome.payment(3) == pytest.approx(50.0)
        assert outcome.payment(2) == pytest.approx(30.0)
        # Optimization 2 is never built.
        assert 2 not in outcome.implemented_at

    def test_cost_recovery_on_trace(self, bids):
        outcome = run_subston(self.COSTS, bids)
        assert outcome.total_payment == pytest.approx(30.0 + 30.0 + 50.0)
        assert outcome.total_cost == pytest.approx(60.0 + 50.0)
        assert accounting.cloud_balance(outcome) >= 0


class TestSection5MultipleIdentities:
    """Section 5.2's Alice example: sybils can help everyone."""

    def test_alice_with_two_identities_services_everyone(self):
        cost = 101.0
        # 99 honest users with value 1, Alice with value 101.
        honest = {f"u{k}": AdditiveBid.single_slot(1, 1.0) for k in range(99)}

        alone = dict(honest)
        alone["alice"] = AdditiveBid.single_slot(1, 101.0)
        outcome = run_addon(cost, alone)
        # Only Alice is serviced: 101/100 = 1.01 exceeds the value 1.
        assert outcome.cumulative(1) == frozenset({"alice"})
        assert outcome.payment("alice") == pytest.approx(101.0)

        sybil = dict(honest)
        sybil["alice#1"] = AdditiveBid.single_slot(1, 101.0)
        sybil["alice#2"] = AdditiveBid.single_slot(1, 101.0)
        outcome = run_addon(cost, sybil)
        # 101 identities now split the cost at exactly 1.0 each.
        assert len(outcome.cumulative(1)) == 101
        assert outcome.payment("alice#1") == pytest.approx(1.0)
        assert outcome.payment("u0") == pytest.approx(1.0)
        # Alice pays 2 total for value 101: utility 99 as in the paper, and
        # no honest user is worse off (they were unserviced before).
        assert outcome.payment("alice#1") + outcome.payment("alice#2") == pytest.approx(2.0)


class TestSection6SubstitutableSybil:
    """Section 6's dummy-user example: sybils *can* hurt others here."""

    COSTS = {1: 6.0, 2: 5.0}

    def test_honest_play(self):
        bids = {
            1: {1: 5.0},
            2: {1: 2.51, 2: 2.51},
            3: {2: 7.0},
        }
        outcome = run_substoff(self.COSTS, bids)
        # Optimization 2 is implemented at share 2.5 for users {2, 3}.
        assert outcome.implemented == (2,)
        assert outcome.serviced(2) == frozenset({2, 3})
        assert outcome.payment(3) == pytest.approx(2.5)

    def test_sybil_attack_flips_the_outcome(self):
        # User 1 replaces her bid with identities 1' and 1'' at 2.5 each.
        bids = {
            "1a": {1: 2.5},
            "1b": {1: 2.5},
            2: {1: 2.51, 2: 2.51},
            3: {2: 7.0},
        }
        outcome = run_substoff(self.COSTS, bids)
        # Optimization 1 now reaches share 6/3 = 2 and wins phase 1, pulling
        # user 2 away; user 3 covers optimization 2's full cost alone.
        assert outcome.implemented == (1, 2)
        assert outcome.serviced(1) == frozenset({"1a", "1b", 2})
        assert outcome.payment("1a") == pytest.approx(2.0)
        assert outcome.payment(2) == pytest.approx(2.0)
        assert outcome.payment(3) == pytest.approx(5.0)
        # Paper's utilities: 1 for user 1 (5 - 2*2), 0.51 for user 2, and 2
        # for user 3 — down from 4.5 under honest play.
        assert 5.0 - outcome.payment("1a") - outcome.payment("1b") == pytest.approx(1.0)
        assert 2.51 - outcome.payment(2) == pytest.approx(0.51)
        assert 7.0 - outcome.payment(3) == pytest.approx(2.0)


class TestShapleyExampleFromDocstring:
    def test_three_bidders(self):
        result = run_shapley(100.0, {"ann": 60.0, "bob": 55.0, "eve": 20.0})
        assert result.serviced == frozenset({"ann", "bob"})
        assert result.price == pytest.approx(50.0)
        assert result.revenue == pytest.approx(100.0)

    def test_cascade_to_empty(self):
        """Evictions can cascade until nobody is left (bob at 45 < 50)."""
        result = run_shapley(100.0, {"ann": 60.0, "bob": 45.0, "eve": 20.0})
        assert not result.implemented
        assert result.price == 0.0
        assert result.revenue == 0.0
