"""The shared-nothing multi-process fleet, bit-for-bit against in-process.

The acceptance contract of :class:`repro.fleet.mp.MultiProcessFleet`: for
the same intake, the worker pool must produce *exactly* the outcomes,
metered costs, billing ledger, and event log of the in-process
:class:`~repro.fleet.engine.FleetEngine` — at every worker count, and
even when a worker process is literally killed mid-period (the master
respawns it and replays its command history). Also covered here: the
:class:`~repro.fleet.executor.FleetExecutor` seam (`FleetEngine.build`
backend selection, close semantics, structured intake errors), ShardMap
ownership edge cases, and the executor choice surfacing through the
gateway (``Configure.workers`` / ``ConfigReply.workers``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AdditiveBid,
    FleetExecutor,
    GameConfigError,
    MechanismError,
    MultiProcessFleet,
    PricingService,
    ProtocolError,
)
from repro.cloudsim import OptimizationCatalog
from repro.fleet import FleetBatch, FleetEngine, ShardMap
from repro.gateway import AdvanceSlots, Configure, SubmitBids
from repro.workloads.fleet import fleet_batches, fleet_game_costs


def make_catalog(games: int, seed: int = 2012) -> OptimizationCatalog:
    return OptimizationCatalog.from_costs(fleet_game_costs(seed, games, 30.0))


def assert_reports_identical(expected, actual) -> None:
    """Bitwise identity: outcomes, metered costs, ledger, event log."""
    assert dict(actual.payments) == dict(expected.payments)
    assert dict(actual.granted_at) == dict(expected.granted_at)
    assert dict(actual.implemented) == dict(expected.implemented)
    assert dict(actual.game_revenue) == dict(expected.game_revenue)
    assert actual.ledger == expected.ledger
    assert actual.events == expected.events
    assert actual.epoch == expected.epoch
    assert actual.games == expected.games


def drive_period(fleet, *, seed=7, users=120, kill=()):
    """One deterministic mixed period: bulk intake, then handle bids and
    upward revisions interleaved with slot advances. ``kill`` names
    worker indexes to ``Process.kill()`` right after the first advance.
    """
    games = len(list(fleet.catalog))
    opt = list(fleet.catalog)
    horizon = fleet.horizon
    fleet.ingest_many(fleet_batches(seed, users, games, horizon, 3))
    fleet.place_bid("alice", opt[0], AdditiveBid.over(2, (30.0, 25.0, 10.0)))
    fleet.place_bid(("tup", 1), opt[1 % games], AdditiveBid.over(1, (60.0, 5.0)))
    fleet.advance_slots(2)
    for worker in kill:
        fleet.processes[worker].kill()
        fleet.processes[worker].join(timeout=5.0)
    fleet.place_bid("bob", opt[0], AdditiveBid.over(4, (45.0, 20.0)))
    fleet.revise_bid("alice", opt[0], {4: 50.0})
    fleet.advance_slot()
    fleet.revise_bid("bob", opt[0], {5: 80.0, 6: 10.0})
    return fleet.run_to_end()


def run_period(workers, *, games=6, shards=4, horizon=10, kill=()):
    catalog = make_catalog(games)
    fleet = FleetEngine.build(
        catalog, horizon, shards=shards, workers=workers
    )
    try:
        return drive_period(fleet, kill=kill)
    finally:
        fleet.close()


# ------------------------------------------------------- backend selection --


class TestBuildSeam:
    def test_zero_and_one_worker_are_in_process(self):
        for workers in (0, 1):
            fleet = FleetEngine.build(make_catalog(3), 5, workers=workers)
            assert type(fleet) is FleetEngine
            assert isinstance(fleet, FleetExecutor)
            assert fleet.workers == 0

    def test_many_workers_build_the_pool(self):
        fleet = FleetEngine.build(make_catalog(5), 5, workers=2)
        try:
            assert type(fleet) is MultiProcessFleet
            assert isinstance(fleet, FleetExecutor)
            assert fleet.workers == 2
            # shards default to the worker count: every worker owns one.
            assert fleet.shards.shards == 2
            assert len(fleet.processes) == 2
            assert all(proc.is_alive() for proc in fleet.processes)
            assert all(proc.daemon for proc in fleet.processes)
        finally:
            fleet.close()

    def test_mapping_catalog_and_bad_workers(self):
        fleet = FleetEngine.build({"a": 10.0, "b": 20.0}, 4, workers=0)
        assert fleet.rank_of("b") == 1
        with pytest.raises(GameConfigError):
            FleetEngine.build(make_catalog(2), 4, workers=-1)
        with pytest.raises(GameConfigError):
            MultiProcessFleet(make_catalog(2), 4, workers=0)


# ------------------------------------------------------------ bit identity --


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_mixed_period_identical_at_every_worker_count(self, workers):
        # workers=5 against shards=4 leaves one worker idle — the merge
        # must not care.
        expected = run_period(0)
        assert_reports_identical(expected, run_period(workers))

    def test_single_worker_pool_matches(self):
        # A 1-worker pool exercises the full pipe/codec/merge machinery
        # with no actual sharding.
        expected = run_period(0)
        fleet = MultiProcessFleet(make_catalog(6), 10, shards=4, workers=1)
        try:
            assert_reports_identical(expected, drive_period(fleet))
        finally:
            fleet.close()

    def test_clock_and_epoch_track_the_engine(self):
        engine = FleetEngine.build(make_catalog(4), 6, shards=2)
        pool = FleetEngine.build(make_catalog(4), 6, shards=2, workers=2)
        try:
            batches = fleet_batches(11, 60, 4, 6, 3)
            assert engine.ingest_many(batches) == pool.ingest_many(batches)
            while engine.slot < engine.horizon:
                engine.advance_slot()
                pool.advance_slot()
                assert pool.slot == engine.slot
                assert pool.epoch == engine.epoch
        finally:
            pool.close()

    @settings(max_examples=5, deadline=None)
    @given(data=st.data())
    def test_property_identity_across_backends(self, data):
        games = data.draw(st.integers(1, 5), label="games")
        horizon = data.draw(st.integers(2, 8), label="horizon")
        shards = data.draw(st.integers(1, 5), label="shards")
        workers = data.draw(st.sampled_from((2, 3)), label="workers")
        users = data.draw(st.integers(0, 60), label="users")
        seed = data.draw(st.integers(0, 2**20), label="seed")
        kill_worker = data.draw(
            st.one_of(st.none(), st.integers(0, workers - 1)), label="kill"
        )
        n_handle = data.draw(st.integers(0, 3), label="handle bids")
        rng = np.random.default_rng(seed)
        handle_bids = []
        for i in range(n_handle):
            start = int(rng.integers(1, horizon + 1))
            duration = int(rng.integers(1, horizon - start + 2))
            values = tuple(float(v) for v in rng.uniform(0.0, 40.0, duration))
            handle_bids.append(
                (f"h{i}", int(rng.integers(0, games)), start, values)
            )
        advance_first = data.draw(st.integers(0, horizon - 1), label="advance")

        def run(workers_n):
            catalog = make_catalog(games, seed=seed)
            opt = list(catalog)
            fleet = FleetEngine.build(
                catalog, horizon, shards=shards, workers=workers_n
            )
            try:
                if users:
                    fleet.ingest_many(
                        fleet_batches(seed, users, games, horizon, 2)
                    )
                if advance_first:
                    fleet.advance_slots(advance_first)
                if workers_n and kill_worker is not None:
                    fleet.processes[kill_worker].kill()
                for user, rank, start, values in handle_bids:
                    if start > fleet.slot:
                        fleet.place_bid(
                            user, opt[rank], AdditiveBid.over(start, values)
                        )
                return fleet.run_to_end()
            finally:
                fleet.close()

        assert_reports_identical(run(0), run(workers))


# --------------------------------------------------------- crash tolerance --


class TestCrashTolerance:
    def test_killed_workers_respawn_and_change_nothing(self):
        expected = run_period(0)
        assert_reports_identical(expected, run_period(3, kill=(0, 1)))

    def test_kill_between_every_advance(self):
        catalog = make_catalog(5)
        engine = FleetEngine.build(catalog, 6, shards=3)
        pool = FleetEngine.build(catalog, 6, shards=3, workers=2)
        try:
            batches = fleet_batches(13, 80, 5, 6, 3)
            engine.ingest_many(batches)
            pool.ingest_many(batches)
            victim = 0
            while pool.slot < pool.horizon:
                pool.processes[victim].kill()
                victim = (victim + 1) % pool.workers
                engine.advance_slot()
                pool.advance_slot()
            assert_reports_identical(engine.report(), pool.report())
        finally:
            pool.close()


# ---------------------------------------------------- metric continuity --


class TestMetricContinuity:
    """Fleet metrics live in the *master* process, so worker kills can
    never reset them: respawns are counted, and every counter is
    monotone across the crash-and-replay cycle."""

    def test_respawns_are_counted_across_worker_kills(self):
        from repro import obs

        respawns = obs.REGISTRY.counter("repro_fleet_respawns_total")
        before = respawns.value
        expected = run_period(0)
        assert respawns.value == before  # in-process: nothing to respawn
        assert_reports_identical(expected, run_period(3, kill=(0, 1)))
        assert respawns.value >= before + 2  # one per killed worker

    def test_counters_survive_kills_and_never_go_backwards(self):
        from repro import obs

        chunks = obs.REGISTRY.histogram(
            "repro_fleet_worker_chunk_seconds", "", ("worker",)
        )
        slots = obs.REGISTRY.histogram("repro_fleet_slot_advance_seconds")
        catalog = make_catalog(5)
        pool = FleetEngine.build(catalog, 6, shards=3, workers=2)
        try:
            pool.ingest_many(fleet_batches(13, 80, 5, 6, 3))
            observed: list[int] = []
            victim = 0
            while pool.slot < pool.horizon:
                pool.processes[victim].kill()
                victim = (victim + 1) % pool.workers
                pool.advance_slot()
                observed.append(
                    sum(
                        chunks.labels(worker=str(w)).count
                        for w in range(pool.workers)
                    )
                )
            assert observed == sorted(observed)  # monotone through kills
            assert observed[-1] > 0
        finally:
            pool.close()
        # The single-process engine's per-slot histogram is master-side
        # state too and keeps its count after the pool is gone.
        engine = FleetEngine.build(catalog, 6, shards=3)
        before = slots.count
        engine.ingest_many(fleet_batches(13, 80, 5, 6, 3))
        engine.run_to_end()
        assert slots.count >= before + 6


# ------------------------------------------------------- shard-map edges --


class TestShardMapEdges:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_single_shard_period(self, workers):
        # One shard: with a pool, every game lands on worker 0 and the
        # others idle — outcomes still identical.
        report = run_period(workers, shards=1)
        assert_reports_identical(run_period(0, shards=1), report)

    @pytest.mark.parametrize("workers", [0, 3])
    def test_more_shards_than_games(self, workers):
        report = run_period(workers, games=2, shards=7)
        assert_reports_identical(run_period(0, games=2, shards=7), report)

    @pytest.mark.parametrize("workers", [1, 2, 3, 5, 8])
    def test_owned_ranks_partition_the_catalog(self, workers):
        shard_map = ShardMap(n_games=11, shards=5)
        seen: dict[int, int] = {}
        for worker in range(workers):
            for rank in shard_map.owned_ranks(worker, workers):
                assert rank not in seen
                seen[rank] = worker
                assert shard_map.owner_of(rank, workers) == worker
        assert sorted(seen) == list(range(11))

    def test_ownership_is_pure_arithmetic_across_respawn(self):
        # The replacement worker recomputes the same map: ranks never
        # migrate across a loss (owner_of has no state to lose).
        shard_map = ShardMap(n_games=9, shards=4)
        before = [shard_map.owner_of(rank, 3) for rank in range(9)]
        rebuilt = ShardMap(n_games=9, shards=4)
        assert [rebuilt.owner_of(rank, 3) for rank in range(9)] == before
        with pytest.raises(GameConfigError):
            shard_map.owner_of(0, 0)
        with pytest.raises(GameConfigError):
            shard_map.owned_ranks(3, 3)


# -------------------------------------------------------- structured errors --


@pytest.fixture(params=[0, 2], ids=["in-process", "2-workers"])
def executor(request):
    fleet = FleetEngine.build(
        make_catalog(4), 6, shards=2, workers=request.param
    )
    yield fleet
    fleet.close()


class TestIntakeErrors:
    def test_ragged_batch_values_are_protocol_errors(self):
        with pytest.raises(ProtocolError):
            FleetBatch(
                users=("a", "b"),
                opt_ranks=np.array([0, 1]),
                starts=np.array([1, 1]),
                values=[[1.0, 2.0], [3.0]],
            )

    def test_misaligned_batch_columns_are_config_errors(self):
        with pytest.raises(GameConfigError):
            FleetBatch(
                users=("a", "b", "c"),
                opt_ranks=np.array([0, 1]),
                starts=np.array([1, 1]),
                values=np.ones((2, 2)),
            )

    def test_ingest_after_first_slot_is_mechanism_error(self, executor):
        executor.advance_slot()
        batch = fleet_batches(3, 10, 4, 6, 2)[0]
        with pytest.raises(MechanismError):
            executor.ingest_many([batch])

    def test_intake_after_close_is_protocol_error(self, executor):
        executor.ingest_many(fleet_batches(3, 20, 4, 6, 2))
        executor.advance_slot()
        report_before = executor.report()
        executor.close()
        executor.close()  # idempotent
        batch = fleet_batches(3, 10, 4, 6, 2)[0]
        with pytest.raises(ProtocolError):
            executor.ingest_many([batch])
        with pytest.raises(ProtocolError):
            executor.place_bid("zoe", list(executor.catalog)[0],
                               AdditiveBid.over(2, (5.0,)))
        with pytest.raises(ProtocolError):
            executor.revise_bid("zoe", list(executor.catalog)[0], {3: 9.0})
        with pytest.raises(ProtocolError):
            executor.advance_slot()
        assert not executor.bulk_intake_open
        # report keeps working: the outcome survives its executor.
        assert_reports_identical(report_before, executor.report())

    def test_advance_past_horizon_is_mechanism_error(self, executor):
        with pytest.raises(GameConfigError):
            executor.advance_slots(0)
        executor.advance_slots(executor.horizon)
        with pytest.raises(MechanismError):
            executor.advance_slot()

    def test_unencodable_id_rejected_with_nothing_placed(self):
        # Hashable but not wire-codec-expressible: the pool must reject
        # it all-or-nothing, leaving master and workers untouched.
        class Opaque:
            __hash__ = object.__hash__

        catalog = make_catalog(4)
        pool = FleetEngine.build(catalog, 6, shards=2, workers=2)
        try:
            with pytest.raises(ProtocolError):
                pool.place_bid(
                    Opaque(), list(catalog)[0], AdditiveBid.over(1, (9.0,))
                )
            report = drive_period(pool)
        finally:
            pool.close()
        engine = FleetEngine.build(catalog, 6, shards=2)
        assert_reports_identical(drive_period(engine), report)


# ------------------------------------------------------- through the gateway --


class TestGatewayExecutorChoice:
    def _bid_requests(self):
        return [
            SubmitBids(tenant="t1", bids=(("a", 1, (30.0, 20.0)),)),
            SubmitBids(tenant="t2", bids=(("a", 2, (25.0,)), ("b", 1, (40.0,)))),
            SubmitBids(tenant="t3", bids=(("b", 2, (35.0, 35.0)),)),
        ]

    def _run(self, workers):
        service = PricingService(
            OptimizationCatalog.from_costs({"a": 40.0, "b": 60.0}),
            horizon=4,
            workers=workers,
        )
        try:
            acks = service.dispatch(self._bid_requests())
            assert acks.failed is None
            return service.run_to_end()
        finally:
            service.close()

    def test_configure_workers_picks_the_backend(self):
        service = PricingService(
            OptimizationCatalog.from_costs({"a": 40.0}), horizon=4
        )
        assert service.fleet.workers == 0
        reply = service.dispatch(
            Configure(
                optimizations=(("a", 40.0), ("b", 60.0)),
                horizon=4,
                workers=2,
            )
        )
        assert reply.workers == 2
        assert type(service.fleet) is MultiProcessFleet
        procs = service.fleet.processes
        # Reconfiguring away from the pool reaps the worker processes.
        reply = service.dispatch(
            Configure(optimizations=(("a", 40.0),), horizon=4)
        )
        assert reply.workers == 0
        assert type(service.fleet) is FleetEngine
        for proc in procs:
            proc.join(timeout=5.0)
            assert not proc.is_alive()
        service.close()

    def test_gateway_outcomes_identical_across_backends(self):
        assert_reports_identical(self._run(0), self._run(2))

    def test_service_close_reaps_the_pool(self):
        service = PricingService(
            OptimizationCatalog.from_costs({"a": 40.0}), horizon=4, workers=2
        )
        procs = service.fleet.processes
        service.dispatch(AdvanceSlots(slots=1))
        service.close()
        for proc in procs:
            proc.join(timeout=5.0)
            assert not proc.is_alive()
