"""Unit tests for SubstOff (Mechanism 3) beyond the paper's examples."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import MechanismError, run_substoff
from repro.core import accounting


class TestPhases:
    def test_single_phase(self):
        outcome = run_substoff({1: 10.0}, {1: {1: 10.0}})
        assert outcome.implemented == (1,)
        assert outcome.grants == {1: 1}
        assert outcome.payments == {1: pytest.approx(10.0)}

    def test_nothing_feasible(self):
        outcome = run_substoff({1: 10.0, 2: 20.0}, {1: {1: 4.0, 2: 4.0}})
        assert outcome.implemented == ()
        assert outcome.grants == {}
        assert outcome.total_payment == 0.0

    def test_serviced_users_leave_later_phases(self):
        # User 1 could afford both, but once granted the cheap one she must
        # not subsidize the expensive one.
        costs = {"cheap": 10.0, "dear": 30.0}
        bids = {
            1: {"cheap": 50.0, "dear": 50.0},
            2: {"dear": 16.0},
        }
        outcome = run_substoff(costs, bids)
        assert outcome.grants[1] == "cheap"
        # Alone, user 2 cannot cover 30.
        assert outcome.grants.get(2) is None
        assert outcome.implemented == ("cheap",)

    def test_second_phase_still_feasible(self):
        costs = {"a": 10.0, "b": 12.0}
        bids = {
            1: {"a": 10.0},
            2: {"b": 6.0},
            3: {"b": 6.0},
        }
        outcome = run_substoff(costs, bids)
        assert set(outcome.implemented) == {"a", "b"}
        assert outcome.payment(2) == pytest.approx(6.0)

    def test_min_share_selection(self):
        # Both feasible; "a" share 5, "b" share 4 — "b" first, and the
        # winner takes user 2 with it, killing "a".
        costs = {"a": 10.0, "b": 8.0}
        bids = {
            1: {"a": 10.0, "b": 10.0},
            2: {"a": 10.0, "b": 10.0},
        }
        outcome = run_substoff(costs, bids)
        assert outcome.implemented == ("b",)
        assert outcome.serviced("b") == frozenset({1, 2})

    def test_each_user_granted_at_most_once(self):
        costs = {j: 5.0 for j in range(5)}
        bids = {i: {j: 10.0 for j in range(5)} for i in range(4)}
        outcome = run_substoff(costs, bids)
        assert len(outcome.grants) == 4
        assert set(outcome.grants) == {0, 1, 2, 3}
        # All four land on the same first optimization.
        assert len(set(outcome.grants.values())) == 1


class TestTieBreaks:
    COSTS = {"a": 10.0, "b": 10.0}
    BIDS = {1: {"a": 10.0}, 2: {"b": 10.0}}

    def test_deterministic_tie_break_uses_cost_order(self):
        outcome = run_substoff(self.COSTS, self.BIDS)
        assert outcome.implemented[0] == "a"

    def test_random_tie_break_hits_both(self):
        seen = set()
        for seed in range(20):
            outcome = run_substoff(
                self.COSTS,
                self.BIDS,
                rng=np.random.default_rng(seed),
                randomize_ties=True,
            )
            seen.add(outcome.implemented[0])
        assert seen == {"a", "b"}

    def test_near_tie_counts_as_tie(self):
        costs = {"a": 10.0, "b": 10.0 + 1e-13}
        outcome = run_substoff(costs, {1: {"a": 10.0}, 2: {"b": 11.0}})
        # Shares 10 and ~10: tie at tolerance; deterministic pick is "a".
        assert outcome.implemented[0] == "a"


class TestForcedBids:
    """SubstOn drives SubstOff with infinite bids; check that path directly."""

    def test_infinite_bid_forces_feasibility(self):
        costs = {"a": 100.0}
        bids = {1: {"a": math.inf}, 2: {"a": 50.0}}
        outcome = run_substoff(costs, bids)
        assert outcome.serviced("a") == frozenset({1, 2})
        assert outcome.payment(2) == pytest.approx(50.0)

    def test_infinite_bid_alone_carries_cost(self):
        costs = {"a": 100.0}
        bids = {1: {"a": math.inf}, 2: {"a": 30.0}}
        outcome = run_substoff(costs, bids)
        # 30 < 50 evicts user 2; the forced user covers the whole cost.
        assert outcome.serviced("a") == frozenset({1})
        assert outcome.payment(1) == pytest.approx(100.0)

    def test_locked_user_cannot_join_other_optimization(self):
        costs = {"a": 10.0, "b": 10.0}
        bids = {
            1: {"a": math.inf, "b": 0.0},
            2: {"b": 6.0},
        }
        outcome = run_substoff(costs, bids)
        assert outcome.grants[1] == "a"
        assert outcome.grants.get(2) is None  # 6 < 10 alone


class TestValidationAndAccounting:
    def test_unknown_optimization_rejected(self):
        with pytest.raises(MechanismError):
            run_substoff({"a": 10.0}, {1: {"zzz": 5.0}})

    def test_cost_recovery(self):
        costs = {"a": 10.0, "b": 12.0}
        bids = {1: {"a": 10.0}, 2: {"b": 6.0}, 3: {"b": 6.0}}
        outcome = run_substoff(costs, bids)
        assert outcome.total_payment == pytest.approx(outcome.total_cost)

    def test_total_utility(self):
        costs = {"a": 10.0}
        bids = {1: {"a": 8.0}, 2: {"a": 8.0}}
        outcome = run_substoff(costs, bids)
        assert accounting.substoff_total_utility(outcome, bids) == pytest.approx(6.0)

    def test_user_utility_with_lie_about_substitutes(self):
        # User 2's true value is on "b" only, but she bid on "a" and won a
        # grant she does not value: utility is -payment.
        costs = {"a": 10.0}
        bids = {1: {"a": 8.0}, 2: {"a": 8.0}}
        truth = {1: {"a": 8.0}, 2: {"b": 8.0}}
        outcome = run_substoff(costs, bids)
        assert accounting.substoff_user_utility(outcome, 2, truth) == pytest.approx(-5.0)
