"""Tests for halo environment classification (Section 2's second query)."""

from __future__ import annotations

import pytest

from repro import QueryError
from repro.astro.environment import (
    HaloSummary,
    classify_environment,
    halo_summaries,
)
from repro.db import Catalog, CostMeter, Schema, Table


@pytest.fixture()
def catalog():
    cat = Catalog()
    table = Table(
        "snap_01",
        Schema.of(
            pid="int", x="float", y="float", z="float",
            vx="float", vy="float", vz="float", mass="float", halo="int",
        ),
    )
    # Halo 0: 3 particles around (0,0,0); halo 1: 2 around (4,0,0);
    # halo 2: 2 around (50,50,50); one unclustered particle.
    rows = [
        (1, 0.0, 0.0, 0.0, 0, 0, 0, 2.0, 0),
        (2, 1.0, 0.0, 0.0, 0, 0, 0, 2.0, 0),
        (3, -1.0, 0.0, 0.0, 0, 0, 0, 2.0, 0),
        (4, 4.0, 1.0, 0.0, 0, 0, 0, 1.0, 1),
        (5, 4.0, -1.0, 0.0, 0, 0, 0, 1.0, 1),
        (6, 50.0, 50.0, 50.0, 0, 0, 0, 5.0, 2),
        (7, 50.0, 50.0, 51.0, 0, 0, 0, 5.0, 2),
        (8, 99.0, 99.0, 99.0, 0, 0, 0, 1.0, -1),
    ]
    table.extend(
        [
            (pid, x, y, z, float(vx), float(vy), float(vz), m, h)
            for pid, x, y, z, vx, vy, vz, m, h in rows
        ]
    )
    cat.create_table(table)
    return cat


class TestHaloSummaries:
    def test_counts_and_masses(self, catalog):
        summaries = halo_summaries(catalog, "snap_01")
        assert set(summaries) == {0, 1, 2}  # no -1 group
        assert summaries[0].members == 3
        assert summaries[0].mass == pytest.approx(6.0)
        assert summaries[2].mass == pytest.approx(10.0)

    def test_centers(self, catalog):
        summaries = halo_summaries(catalog, "snap_01")
        assert summaries[0].center == pytest.approx((0.0, 0.0, 0.0))
        assert summaries[1].center == pytest.approx((4.0, 0.0, 0.0))
        assert summaries[2].center == pytest.approx((50.0, 50.0, 50.5))

    def test_meter_charged(self, catalog):
        meter = CostMeter()
        halo_summaries(catalog, "snap_01", meter)
        assert meter.scan_bytes > 0
        assert meter.rows_emitted > 0


class TestEnvironment:
    def test_classification(self, catalog):
        summaries = halo_summaries(catalog, "snap_01")
        labels = classify_environment(summaries, radius=10.0, rich_threshold=1)
        # Halos 0 and 1 are 4 apart: rich; halo 2 is far away: isolated.
        assert labels[0] == "rich"
        assert labels[1] == "rich"
        assert labels[2] == "isolated"

    def test_threshold(self, catalog):
        summaries = halo_summaries(catalog, "snap_01")
        labels = classify_environment(summaries, radius=10.0, rich_threshold=2)
        # Needs >= 2 neighbors now: nobody qualifies.
        assert set(labels.values()) == {"isolated"}

    def test_radius_controls_neighborhood(self, catalog):
        summaries = halo_summaries(catalog, "snap_01")
        labels = classify_environment(summaries, radius=100.0, rich_threshold=2)
        assert labels[0] == "rich"

    def test_validation(self):
        summary = HaloSummary(0, 1, 1.0, (0.0, 0.0, 0.0))
        with pytest.raises(QueryError):
            classify_environment({0: summary}, radius=0.0)
        with pytest.raises(QueryError):
            classify_environment({0: summary}, radius=1.0, rich_threshold=0)

    def test_empty(self):
        assert classify_environment({}, radius=1.0) == {}

    def test_on_simulated_universe(self):
        from repro.astro import UniverseConfig, UniverseSimulator

        snapshots = UniverseSimulator(
            UniverseConfig(particles=500, halos=10, snapshots=3, min_halo_members=6),
            rng=1,
        ).run()
        catalog = Catalog()
        catalog.create_table(snapshots[-1].to_table())
        summaries = halo_summaries(catalog, snapshots[-1].table_name)
        assert len(summaries) >= 2
        labels = classify_environment(summaries, radius=40.0)
        assert set(labels.values()) <= {"rich", "isolated"}
