"""The fault-injection property: broken networks never corrupt state.

``tests/netfaults.py`` supplies the faults (slow-loris, mid-body
disconnect, torn response write, stalled handler) and the serial
baseline; this file interleaves them with a real workload against an
in-process server and proves, for every fault at every injection point:

1. the final service state is **bit-identical** (via
   ``crashpoints.fingerprint``) to a serial, fault-free run of exactly
   the envelopes that were supposed to land;
2. sheds and timeouts come back as *typed* replies — never a hung
   connection, never a silent drop;
3. an abrupt kill (``ServerThread.kill``, the kill-9 stand-in) at any
   prefix recovers bit-identically from the WAL.

The exhaustive grids (every fault × every injection point, every kill
prefix) are ``@pytest.mark.slow``; a pinned fast subset of the same
properties stays in tier 1.
"""

from __future__ import annotations

import pytest

from crashpoints import fingerprint
from netfaults import (
    Stall,
    drive,
    mid_body_disconnect,
    serial_fingerprint,
    slow_loris,
    torn_write,
    wait_for_dispatched,
    workload,
)
from repro.gateway import ErrorReply, PricingService, SubmitBids
from repro.gateway.client import GatewayClient
from repro.gateway.server import ServerConfig, ServerThread

STEPS = workload()

# Fault name -> injector(host, port). Injectors that deliver a complete
# envelope (torn_write) contribute it to the serial baseline; the others
# must leave no trace at all.
TORN_STEP = SubmitBids(tenant="torn", bids=(("opt1", 1, (44.0, 33.0)),))
FAULTS = {
    "slow_loris": lambda host, port: slow_loris(host, port),
    "mid_body_disconnect": lambda host, port: mid_body_disconnect(host, port),
    "torn_write": lambda host, port: torn_write(host, port, TORN_STEP),
}


def run_with_fault(fault: str, position: int, *, read_timeout: float = 0.15):
    """Drive the workload with one fault injected before step ``position``;
    returns ``(server_fingerprint, serial_fingerprint_of_what_landed)``."""
    service = PricingService()
    thread = ServerThread(
        service, ServerConfig(port=0, read_timeout=read_timeout)
    )
    host, port = thread.start()
    client = GatewayClient(host, port)
    landed = []
    try:
        for index, step in enumerate(STEPS):
            if index == position:
                FAULTS[fault](host, port)
                if fault == "torn_write":
                    # No reply to wait on; sync on the health counter.
                    wait_for_dispatched(client, len(landed) + 1)
                    landed.append(TORN_STEP)
            reply = client.request(step)
            assert not isinstance(reply, ErrorReply), (fault, position, reply)
            landed.append(step)
    finally:
        client.close()
        thread.stop()
    return fingerprint(service), serial_fingerprint(landed)


class TestFaultsFast:
    """Pinned single-point injections: the tier-1 subset of the grid."""

    def test_slow_loris_is_cut_off_with_a_typed_408(self):
        service = PricingService()
        thread = ServerThread(
            service, ServerConfig(port=0, read_timeout=0.15)
        )
        host, port = thread.start()
        try:
            raw = slow_loris(host, port)
            assert b"408" in raw.split(b"\r\n", 1)[0]
            assert b"deadline_exceeded" in raw
            assert b"Connection: close" in raw
        finally:
            thread.stop()
        assert fingerprint(service) == serial_fingerprint([])

    def test_mid_body_disconnect_leaves_no_trace(self):
        server_fp, serial_fp = run_with_fault("mid_body_disconnect", 3)
        assert server_fp == serial_fp

    def test_torn_write_commits_exactly_once(self):
        server_fp, serial_fp = run_with_fault("torn_write", 3)
        assert server_fp == serial_fp

    def test_slow_loris_mid_workload_is_invisible_to_state(self):
        server_fp, serial_fp = run_with_fault("slow_loris", 5)
        assert server_fp == serial_fp

    def test_stalled_handler_with_deadline_cancels_cleanly(self):
        stall = Stall({2: 0.4})  # stall the batch after Configure + 1 submit
        service = PricingService()
        thread = ServerThread(
            service, ServerConfig(port=0), stall_hook=stall
        )
        host, port = thread.start()
        client = GatewayClient(host, port, max_attempts=1)
        landed = []
        try:
            for index, step in enumerate(STEPS[:6]):
                deadline = 0.05 if index == 2 else None
                reply = client.request(step, deadline=deadline)
                if index == 2:
                    # Cancelled inside the stalled batch, typed, retryable.
                    assert isinstance(reply, ErrorReply)
                    assert reply.code == "deadline_exceeded"
                    assert reply.retryable is True
                else:
                    assert not isinstance(reply, ErrorReply)
                    landed.append(step)
        finally:
            client.close()
            thread.stop()
        assert fingerprint(service) == serial_fingerprint(landed)

    def test_kill9_after_a_prefix_recovers_bit_identically(self, tmp_path):
        prefix = 7
        service = PricingService()
        service.attach_wal(tmp_path / "wal")
        thread = ServerThread(service, ServerConfig(port=0))
        host, port = thread.start()
        client = GatewayClient(host, port)
        try:
            drive(client, STEPS[:prefix])
        finally:
            client.close()
            thread.kill()  # no drain, no checkpoint
        service.close()
        recovered = PricingService.recover(tmp_path / "wal")
        try:
            assert fingerprint(recovered) == serial_fingerprint(STEPS[:prefix])
        finally:
            recovered.close()


@pytest.mark.slow
class TestFaultGrid:
    """Every fault at every injection point of the workload."""

    @pytest.mark.parametrize("fault", sorted(FAULTS))
    @pytest.mark.parametrize("position", range(len(STEPS)))
    def test_fault_anywhere_preserves_state(self, fault, position):
        server_fp, serial_fp = run_with_fault(fault, position)
        assert server_fp == serial_fp

    @pytest.mark.parametrize("prefix", range(len(STEPS) + 1))
    def test_kill9_at_every_prefix_recovers(self, prefix, tmp_path):
        service = PricingService()
        service.attach_wal(tmp_path / "wal")
        thread = ServerThread(service, ServerConfig(port=0))
        host, port = thread.start()
        client = GatewayClient(host, port)
        try:
            drive(client, STEPS[:prefix])
        finally:
            client.close()
            thread.kill()
        service.close()
        recovered = PricingService.recover(tmp_path / "wal")
        try:
            assert fingerprint(recovered) == serial_fingerprint(STEPS[:prefix])
        finally:
            recovered.close()

    def test_fault_storm_then_drain_then_recover(self, tmp_path):
        """All faults interleaved in one run over a durable service,
        graceful drain, recovery — end state still serial."""
        service = PricingService()
        service.attach_wal(tmp_path / "wal", checkpoint_every=5)
        thread = ServerThread(
            service, ServerConfig(port=0, read_timeout=0.15)
        )
        host, port = thread.start()
        client = GatewayClient(host, port)
        landed = []
        try:
            for index, step in enumerate(STEPS):
                if index == 2:
                    mid_body_disconnect(host, port)
                if index == 4:
                    torn_write(host, port, TORN_STEP)
                    wait_for_dispatched(client, len(landed) + 1)
                    landed.append(TORN_STEP)
                if index == 6:
                    slow_loris(host, port)
                reply = client.request(step)
                assert not isinstance(reply, ErrorReply)
                landed.append(step)
        finally:
            client.close()
            thread.stop()
        expected = serial_fingerprint(landed)
        assert fingerprint(service) == expected
        service.close()
        recovered = PricingService.recover(tmp_path / "wal")
        try:
            assert fingerprint(recovered) == expected
        finally:
            recovered.close()
