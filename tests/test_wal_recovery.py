"""Write-ahead log + checkpointed recovery, proven under crash injection.

The central property: for ANY workload and ANY crash point,
``PricingService.recover(dir)`` rebuilds a service whose observable
state — catalog (rows, epochs, indexes, views), workload log, billing
ledger, event log, fleet slot — is bit-identical to a service that ran
the same workload without crashing, and finishing the workload on the
recovered service yields bit-identical replies. Hypothesis drives the
workload and the crash point; ``tests/crashpoints.py`` supplies the
deterministic kill switch.

Alongside the property: the all-or-nothing ``BulkAcks`` contract across
a mid-bulk crash, corruption fuzzing (torn tails, flipped bytes,
duplicated/gapped sequences, stale checkpoints — every one a structured
``RecoveryError``, never silent state loss), the shared JSONL reader,
and round-trips for the new Catalog/WorkloadLog codecs.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from crashpoints import (
    CrashPoint,
    SimulatedCrash,
    continuation,
    durable_requests,
    fingerprint,
    run_steps,
    run_until_crash,
)
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import GameConfigError, RecoveryError
from repro.gateway import codec
from repro.gateway.envelopes import (
    AdvanceSlots,
    AdviseRequest,
    Configure,
    ErrorReply,
    LedgerQuery,
    ReviseBid,
    RunQuery,
    SubmitBids,
)
from repro.gateway.service import PricingService
from repro.gateway.trace import iter_trace, replay_path
from repro.gateway.wal.records import WAL_FILENAME, iter_jsonl

OPTS = (("idx", 40.0), ("mv", 25.0))


def _seed(service: PricingService) -> None:
    table = Table("snap_01", Schema.of(pid="int", halo="int"))
    for i in range(24):
        table.insert((i, i % 5 - 1))
    service.db.create_table(table)


def _service() -> PricingService:
    service = PricingService()
    _seed(service)
    return service


def _submit(tenant, opt, start, values, revisable=False) -> SubmitBids:
    return SubmitBids(
        tenant=tenant, bids=((opt, start, tuple(values)),), revisable=revisable
    )


# ------------------------------------------------------------ strategies --

_VALUES = st.lists(
    st.sampled_from([5.0, 10.0, 17.5, 30.0]), min_size=1, max_size=3
)
_TENANTS = st.sampled_from(["ann", "bob", "cara", "dan"])
_OPT_IDS = st.sampled_from(["idx", "mv"])


@st.composite
def workloads(draw):
    """A Configure followed by a mix of every envelope kind.

    Steps may fail (duplicate bids, over-horizon advances, unrevisable
    revisions) — deliberately: failed dispatches are logged and must
    replay to the same ErrorReply.
    """
    horizon = draw(st.integers(3, 5))
    steps: list = [Configure(optimizations=OPTS, horizon=horizon)]
    for _ in range(draw(st.integers(1, 6))):
        kind = draw(
            st.sampled_from(
                ["bulk", "single", "revise", "advance", "ledger", "query", "advise"]
            )
        )
        if kind == "bulk":
            steps.append(
                [
                    _submit(
                        draw(_TENANTS), draw(_OPT_IDS), draw(st.integers(1, 2)),
                        draw(_VALUES),
                    )
                    for _ in range(draw(st.integers(1, 3)))
                ]
            )
        elif kind == "single":
            steps.append(
                _submit(
                    draw(_TENANTS), draw(_OPT_IDS), draw(st.integers(1, 2)),
                    draw(_VALUES), revisable=draw(st.booleans()),
                )
            )
        elif kind == "revise":
            steps.append(
                ReviseBid(
                    tenant=draw(_TENANTS),
                    optimization=draw(_OPT_IDS),
                    new_values=((draw(st.integers(1, 3)), 40.0),),
                )
            )
        elif kind == "advance":
            steps.append(AdvanceSlots(slots=1))
        elif kind == "ledger":
            steps.append(LedgerQuery(tenant=draw(_TENANTS)))
        elif kind == "query":
            steps.append(
                RunQuery(
                    tenant=draw(_TENANTS), query="members", table="snap_01",
                    halo=draw(st.integers(0, 3)),
                )
            )
        else:
            steps.append(AdviseRequest())
    return steps


def _assert_recover_equals_serial(steps, crash_at, checkpoint_every):
    reference = _service()
    ref_replies = run_steps(reference, steps)
    ref_fp = fingerprint(reference)

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        dut = _service()
        dut.attach_wal(directory, checkpoint_every=checkpoint_every)
        probe = CrashPoint(crash_at)
        dut.wal_probe = probe
        replies, crashed = run_until_crash(dut, steps)
        if not crashed:
            assert replies == ref_replies
            dut.close()

        done = durable_requests(directory)
        recovered = PricingService.recover(
            directory, checkpoint_every=checkpoint_every
        )
        tail = run_steps(recovered, continuation(steps, done))
        assert tail == ref_replies[len(ref_replies) - len(tail) :]
        assert fingerprint(recovered) == ref_fp


# ------------------------------------------------- the central property --


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    steps=workloads(),
    crash_at=st.one_of(st.none(), st.integers(0, 19)),
    checkpoint_every=st.sampled_from([1, 3, None]),
)
def test_recover_equals_serial(steps, crash_at, checkpoint_every):
    _assert_recover_equals_serial(steps, crash_at, checkpoint_every)


@pytest.mark.slow
@settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    steps=workloads(),
    crash_at=st.one_of(st.none(), st.integers(0, 49)),
    checkpoint_every=st.sampled_from([1, 2, 3, 5, None]),
)
def test_recover_equals_serial_full_grid(steps, crash_at, checkpoint_every):
    _assert_recover_equals_serial(steps, crash_at, checkpoint_every)


def test_every_crash_point_of_one_workload_recovers():
    """Exhaustively kill one fixed workload at every probe boundary."""
    steps = [
        Configure(optimizations=OPTS, horizon=3),
        [_submit("ann", "idx", 1, (30.0, 30.0)), _submit("bob", "mv", 1, (25.0,))],
        AdvanceSlots(slots=1),
        RunQuery(tenant="ann", query="members", table="snap_01", halo=1),
        AdvanceSlots(slots=2),
        LedgerQuery(tenant="ann"),
    ]
    clean = CrashPoint(None)
    dut = _service()
    with tempfile.TemporaryDirectory() as tmp:
        dut.attach_wal(Path(tmp), checkpoint_every=2)
        dut.wal_probe = clean
        run_steps(dut, steps)
    assert len(clean.fired) > 10  # the grid is real
    for crash_at in range(len(clean.fired)):
        _assert_recover_equals_serial(steps, crash_at, checkpoint_every=2)


# ------------------------------------------------------ BulkAcks atomicity --


def _bulk_workload():
    return [
        Configure(optimizations=OPTS, horizon=3),
        [
            _submit("ann", "idx", 1, (30.0, 30.0)),
            _submit("bob", "idx", 1, (20.0,)),
            _submit("bob", "mv", 2, (15.0,)),
        ],
    ]


def _crash_bulk(crash_at):
    """Run the bulk workload, crash at ``crash_at``, recover; return all."""
    steps = _bulk_workload()
    directory = Path(tempfile.mkdtemp())
    dut = _service()
    dut.attach_wal(directory, checkpoint_every=None)
    dut.wal_probe = probe = CrashPoint(crash_at)
    with pytest.raises(SimulatedCrash):
        run_steps(dut, steps)
    return directory, probe


def test_bulk_crash_before_append_loses_the_whole_run():
    # Probes 0-2 are Configure's append/appended/apply; probe 3 is the
    # batch record's "wal:append" — the crash lands before any byte of
    # the run is durable.
    directory, probe = _crash_bulk(3)
    assert probe.crashed_stage == "wal:append"
    assert durable_requests(directory) == 1  # just the Configure
    recovered = PricingService.recover(directory)
    baseline = _service()
    run_steps(baseline, [Configure(optimizations=OPTS, horizon=3)])
    assert fingerprint(recovered) == fingerprint(baseline)


def test_bulk_crash_after_append_replays_the_whole_run():
    # Probe 4 is the batch record's "wal:appended": durable, but the
    # crash hits before any effect applies. Recovery must apply ALL of
    # the run — the BulkAcks contract is all-or-nothing across restarts.
    directory, probe = _crash_bulk(4)
    assert probe.crashed_stage == "wal:appended"
    assert durable_requests(directory) == 4  # Configure + the 3-bid run
    recovered = PricingService.recover(directory)
    reference = _service()
    run_steps(reference, _bulk_workload())
    assert fingerprint(recovered) == fingerprint(reference)


# --------------------------------------------------------- corruption fuzz --


def _durable_run(checkpoint_every=None, tmp=None):
    """A closed durable service's directory after a fixed workload."""
    directory = Path(tmp if tmp is not None else tempfile.mkdtemp())
    service = _service()
    service.attach_wal(directory, checkpoint_every=checkpoint_every)
    run_steps(
        service,
        [
            Configure(optimizations=OPTS, horizon=3),
            [_submit("ann", "idx", 1, (30.0, 30.0))],
            _submit("bob", "mv", 1, (25.0,), revisable=True),
            AdvanceSlots(slots=1),
            LedgerQuery(tenant="ann"),
        ],
    )
    service.close()
    return directory


def test_truncated_tail_recovers_to_the_last_valid_prefix():
    directory = _durable_run()
    wal = directory / WAL_FILENAME
    data = wal.read_bytes()
    wal.write_bytes(data[:-9])  # tear the final record mid-line
    recovered = PricingService.recover(directory)
    assert durable_requests(directory) == 4  # the torn record is gone
    # The torn bytes were physically truncated: appending works cleanly.
    reply = recovered.dispatch(LedgerQuery(tenant="ann"))
    assert not isinstance(reply, ErrorReply)
    lines = list(iter_jsonl(wal))
    assert all(line.error is None for line in lines)
    assert all(line.complete for line in lines)


def test_flipped_byte_mid_file_is_a_recovery_error():
    directory = _durable_run()
    wal = directory / WAL_FILENAME
    data = bytearray(wal.read_bytes())
    lines = list(iter_jsonl(wal))
    target = lines[1]  # a complete, non-final record
    for offset in range(target.end_offset - 12, target.end_offset - 2):
        if chr(data[offset]).isdigit():
            data[offset] = ord("7") if data[offset] != ord("7") else ord("3")
            break
    wal.write_bytes(bytes(data))
    with pytest.raises(RecoveryError):
        PricingService.recover(directory)


def test_flipped_byte_in_complete_final_line_is_a_recovery_error():
    # A final line WITH its newline is not a torn append: corruption
    # there must refuse, not silently drop the record.
    directory = _durable_run()
    wal = directory / WAL_FILENAME
    data = bytearray(wal.read_bytes())
    assert data.endswith(b"\n")
    data[-10] = data[-10] ^ 0x01
    wal.write_bytes(bytes(data))
    with pytest.raises(RecoveryError):
        PricingService.recover(directory)


def test_duplicated_sequence_number_is_a_recovery_error():
    directory = _durable_run()
    wal = directory / WAL_FILENAME
    lines = wal.read_bytes().splitlines(keepends=True)
    wal.write_bytes(b"".join(lines) + lines[-1])  # replay the last record
    with pytest.raises(RecoveryError, match="duplicates sequence"):
        PricingService.recover(directory)


def test_sequence_gap_is_a_recovery_error():
    directory = _durable_run()
    wal = directory / WAL_FILENAME
    lines = wal.read_bytes().splitlines(keepends=True)
    del lines[2]  # drop a middle record
    wal.write_bytes(b"".join(lines))
    with pytest.raises(RecoveryError, match="sequence"):
        PricingService.recover(directory)


def test_stale_checkpoint_past_wal_end_is_a_recovery_error():
    # checkpoint_every=1 leaves the newest checkpoint covering the last
    # record; deleting that record makes every surviving checkpoint claim
    # more history than the log holds — durable records went missing.
    directory = _durable_run(checkpoint_every=1)
    wal = directory / WAL_FILENAME
    lines = wal.read_bytes().splitlines(keepends=True)
    wal.write_bytes(b"".join(lines[:-1]))
    with pytest.raises(RecoveryError, match="ends at"):
        PricingService.recover(directory)


def test_corrupt_latest_checkpoint_falls_back_to_an_older_one():
    directory = _durable_run(checkpoint_every=2)
    reference = _service()
    run_steps(
        reference,
        [
            Configure(optimizations=OPTS, horizon=3),
            [_submit("ann", "idx", 1, (30.0, 30.0))],
            _submit("bob", "mv", 1, (25.0,), revisable=True),
            AdvanceSlots(slots=1),
            LedgerQuery(tenant="ann"),
        ],
    )
    checkpoints = sorted(directory.glob("checkpoint-*.json"))
    assert len(checkpoints) >= 2
    newest = checkpoints[-1]
    newest.write_bytes(newest.read_bytes()[:-40])  # wreck it
    recovered = PricingService.recover(directory)
    assert fingerprint(recovered) == fingerprint(reference)


def test_every_checkpoint_corrupt_is_a_recovery_error():
    directory = _durable_run(checkpoint_every=2)
    for checkpoint in directory.glob("checkpoint-*.json"):
        checkpoint.write_text("{not json", encoding="utf-8")
    with pytest.raises(RecoveryError, match="failed verification"):
        PricingService.recover(directory)


def test_recovering_an_empty_or_missing_directory_is_a_recovery_error():
    with tempfile.TemporaryDirectory() as tmp:
        with pytest.raises(RecoveryError, match="no checkpoint"):
            PricingService.recover(tmp)
        with pytest.raises(RecoveryError, match="no WAL directory"):
            PricingService.recover(Path(tmp) / "nope")


def test_recovery_error_has_a_stable_wire_code():
    assert ErrorReply.of(RecoveryError("boom")).code == "recovery"


# ----------------------------------------------------- attach-time guards --


def test_attach_wal_refuses_a_directory_with_durable_state():
    directory = _durable_run()
    fresh = _service()
    with pytest.raises(RecoveryError, match="already holds durable state"):
        fresh.attach_wal(directory)


def test_attach_wal_twice_is_a_config_error():
    with tempfile.TemporaryDirectory() as tmp:
        service = _service()
        service.attach_wal(tmp)
        with pytest.raises(GameConfigError, match="already attached"):
            service.attach_wal(tmp)


def test_checkpoint_without_a_wal_is_a_config_error():
    with pytest.raises(GameConfigError, match="no WAL is attached"):
        _service().checkpoint()


def test_durable_service_refuses_an_externally_attached_fleet():
    from repro.fleet.engine import FleetEngine
    from repro.cloudsim.catalog import OptimizationCatalog

    with tempfile.TemporaryDirectory() as tmp:
        service = _service()
        service.attach_wal(tmp)
        fleet = FleetEngine(
            OptimizationCatalog.from_costs({"idx": 40.0}), horizon=3
        )
        with pytest.raises(GameConfigError, match="durable"):
            service.attach_fleet(fleet)


def test_run_to_end_is_logged_and_recoverable():
    with tempfile.TemporaryDirectory() as tmp:
        service = _service()
        service.attach_wal(tmp)
        run_steps(
            service,
            [
                Configure(optimizations=OPTS, horizon=3),
                [_submit("ann", "idx", 1, (30.0, 30.0))],
            ],
        )
        report = service.run_to_end()
        assert report.horizon == 3
        service.close()
        recovered = PricingService.recover(tmp)
        assert recovered.fleet.slot == 3
        assert fingerprint(recovered) == fingerprint(service)


# ------------------------------------------------------ shared JSONL reader --


def test_binary_junk_in_a_trace_is_an_error_marker_not_a_crash(tmp_path):
    # Before the shared reader, raw non-UTF-8 bytes surfaced as a bare
    # UnicodeDecodeError out of iter_trace.
    path = tmp_path / "trace.jsonl"
    path.write_bytes(
        b'\x80\x81\xfe\n{"api": "1.6", "kind": "LedgerQuery", "tenant": "ann"}\n'
    )
    payloads = list(iter_trace(path))
    assert payloads[0]["kind"] == "<unparseable>"
    assert "UTF-8" in payloads[0]["error"]
    assert payloads[1]["kind"] == "LedgerQuery"
    result = replay_path(path)
    assert [r["kind"] for r in result.replies] == ["ErrorReply", "ErrorReply"]
    assert result.replies[0]["code"] == "protocol"


def test_wal_with_binary_junk_line_is_a_recovery_error():
    directory = _durable_run()
    wal = directory / WAL_FILENAME
    lines = wal.read_bytes().splitlines(keepends=True)
    lines.insert(1, b"\x80\x81\xfe\xff\n")
    wal.write_bytes(b"".join(lines))
    with pytest.raises(RecoveryError, match="UTF-8"):
        PricingService.recover(directory)


def test_iter_jsonl_reports_offsets_and_completeness(tmp_path):
    path = tmp_path / "lines.jsonl"
    path.write_bytes(b'{"a": 1}\n\n{"b": 2}\n{"torn": ')
    lines = list(iter_jsonl(path))
    assert [line.payload for line in lines[:2]] == [{"a": 1}, {"b": 2}]
    assert lines[0].complete and lines[1].complete
    torn = lines[2]
    assert torn.error is not None and not torn.complete
    assert torn.end_offset == path.stat().st_size
    assert lines[1].end_offset == len(b'{"a": 1}\n\n{"b": 2}\n')


# ------------------------------------------------- durable-state codecs --


def test_catalog_codec_round_trips_bit_identically():
    service = _service()
    run_steps(
        service,
        [
            Configure(optimizations=OPTS, horizon=3),
            RunQuery(tenant="ann", query="members", table="snap_01", halo=1),
            AdviseRequest(),
        ],
    )
    encoded = codec.encode(service.db)
    json_hop = json.loads(json.dumps(encoded))
    decoded = codec.decode(json_hop)
    assert codec.encode(decoded) == encoded
    assert decoded.epoch == service.db.epoch
    assert decoded.table_names == service.db.table_names
    assert decoded.view_names == service.db.view_names


def test_restored_index_covers_only_the_original_rows():
    from repro.db.costmodel import CostMeter

    service = _service()
    table = service.db.table("snap_01")
    service.db.create_hash_index("snap_01", "halo")
    original_cover = service.db.hash_index("snap_01", "halo")._covered_rows
    table.insert((100, 2))
    table.insert((101, 2))
    decoded = codec.decode(codec.encode(service.db))
    index = decoded.hash_index("snap_01", "halo")
    assert index._covered_rows == original_cover == len(table) - 2
    mine = sorted(index.lookup_rids_many([2], CostMeter()).tolist())
    theirs = sorted(
        service.db.hash_index("snap_01", "halo")
        .lookup_rids_many([2], CostMeter())
        .tolist()
    )
    assert mine == theirs  # neither sees the two post-build rows


def test_workload_log_codec_round_trips_in_order():
    service = _service()
    run_steps(
        service,
        [
            RunQuery(tenant="bob", query="members", table="snap_01", halo=1),
            RunQuery(tenant="ann", query="members", table="snap_01", halo=2),
            RunQuery(tenant="bob", query="members", table="snap_01", halo=3),
        ],
    )
    encoded = codec.encode(service.log)
    decoded = codec.decode(json.loads(json.dumps(encoded)))
    assert codec.encode(decoded) == encoded
    assert [t for t, _, _ in decoded.entries()] == [
        t for t, _, _ in service.log.entries()
    ]


def test_encoding_a_catalog_inside_an_epoch_batch_is_refused():
    from repro.errors import ProtocolError

    service = _service()
    with service.db.epoch_batch():
        with pytest.raises(ProtocolError, match="epoch_batch"):
            codec.encode(service.db)


# ---------------------------------------------------- rotation + wal-gc --


def _rotated_run(tmp, retain=2):
    """A compacting durable run: checkpoint every 2 records, retain few.

    Returns ``(directory, fingerprint_of_the_uncrashed_service)``.
    """
    directory = Path(tmp)
    service = _service()
    service.attach_wal(
        directory, checkpoint_every=2, retain_checkpoints=retain
    )
    run_steps(
        service,
        [
            Configure(optimizations=OPTS, horizon=4),
            _submit("ann", "idx", 1, (30.0, 30.0)),
            _submit("bob", "mv", 1, (25.0,), revisable=True),
            [_submit("cara", "idx", 2, (10.0,)), _submit("dan", "mv", 2, (5.0,))],
            AdvanceSlots(slots=2),
            LedgerQuery(tenant="ann"),
            _submit("ann", "idx", 3, (17.5,)),
            AdvanceSlots(slots=1),
        ],
    )
    expected = fingerprint(service)
    service.close()
    return directory, expected


def test_rotation_bounds_checkpoints_and_recovers_bit_identically(tmp_path):
    directory, expected = _rotated_run(tmp_path, retain=2)
    checkpoints = sorted(directory.glob("checkpoint-*.json"))
    segments = sorted(directory.glob("wal-*.jsonl"))
    assert len(checkpoints) <= 2  # compaction kept the retention bound
    assert segments  # rotation actually sealed segments
    recovered = PricingService.recover(directory)
    assert fingerprint(recovered) == expected
    recovered.close()


def test_recovered_compacted_service_keeps_compacting(tmp_path):
    directory, _ = _rotated_run(tmp_path, retain=1)
    recovered = PricingService.recover(
        directory, checkpoint_every=2, retain_checkpoints=1
    )
    run_steps(
        recovered,
        [_submit("bob", "mv", 4, (25.0,)), AdvanceSlots(slots=1)],
    )
    expected = fingerprint(recovered)
    recovered.close()
    assert len(list(directory.glob("checkpoint-*.json"))) == 1
    again = PricingService.recover(directory)
    assert fingerprint(again) == expected
    again.close()


def test_wal_gc_on_a_monolithic_log_is_idempotent(tmp_path):
    # A directory written WITHOUT rotation compacts on demand.
    directory = _durable_run(tmp=tmp_path)
    service = PricingService.recover(directory)
    expected = fingerprint(service)
    service.checkpoint()
    first = service.wal_gc(retain_checkpoints=1)
    assert len(first.retained_checkpoints) == 1
    assert first.removed  # the pre-gc history went away
    second = service.wal_gc(retain_checkpoints=1)
    assert not second.removed  # nothing left to collect
    service.close()
    recovered = PricingService.recover(directory)
    assert fingerprint(recovered) == expected
    recovered.close()


def test_wal_gc_without_a_wal_is_a_config_error():
    service = _service()
    with pytest.raises(GameConfigError, match="attach_wal"):
        service.wal_gc(retain_checkpoints=1)
    service.close()


def test_attach_wal_rejects_a_non_positive_retention():
    service = _service()
    with pytest.raises(GameConfigError):
        service.attach_wal(tempfile.mkdtemp(), retain_checkpoints=0)
    service.close()


def test_gc_refuses_to_delete_when_the_kept_checkpoint_is_corrupt(tmp_path):
    from repro.gateway.wal.rotate import collect_garbage

    directory, _ = _rotated_run(tmp_path, retain=2)
    keep = sorted(directory.glob("checkpoint-*.json"))[-1]
    keep.write_bytes(keep.read_bytes()[:-7])
    before = sorted(p.name for p in directory.iterdir())
    with pytest.raises(RecoveryError):
        collect_garbage(directory, retain_checkpoints=1)
    # Verify-before-delete: a failed gc removed nothing.
    assert sorted(p.name for p in directory.iterdir()) == before


def test_torn_tail_in_a_sealed_segment_is_a_recovery_error(tmp_path):
    directory, _ = _rotated_run(tmp_path)
    segment = sorted(directory.glob("wal-*.jsonl"))[0]
    segment.write_bytes(segment.read_bytes()[:-9])
    with pytest.raises(RecoveryError) as excinfo:
        PricingService.recover(directory)
    # Only the ACTIVE file may have a torn tail (the crash wrote it);
    # a sealed segment was fsync'd whole, so damage there is corruption.
    assert segment.name in str(excinfo.value)


def test_missing_segment_under_the_checkpoint_floor_is_tolerated(tmp_path):
    # GC legitimately deletes covered segments; recovery must not demand
    # them back as long as a checkpoint covers everything before the
    # remaining files.
    directory, expected = _rotated_run(tmp_path, retain=2)
    recovered = PricingService.recover(directory)
    assert fingerprint(recovered) == expected
    recovered.close()


def test_gap_between_surviving_segments_is_a_recovery_error(tmp_path):
    # GC only ever deletes from the oldest end; a hole in the MIDDLE of
    # the surviving history means someone lost records, not compaction.
    directory, _ = _rotated_run(tmp_path, retain=10)  # keep everything
    segments = sorted(directory.glob("wal-*.jsonl"))
    assert len(segments) >= 3
    segments[1].unlink()
    with pytest.raises(RecoveryError):
        PricingService.recover(directory)


def test_overlapping_segment_names_are_a_recovery_error(tmp_path):
    from repro.gateway.wal.rotate import list_segments

    directory, _ = _rotated_run(tmp_path)
    segment = sorted(directory.glob("wal-*.jsonl"))[0]
    first, last = segment.name[len("wal-"):-len(".jsonl")].split("-")
    clone = directory / f"wal-{first}-{int(last) + 1:012d}.jsonl"
    clone.write_bytes(segment.read_bytes())
    with pytest.raises(RecoveryError, match="overlap"):
        list_segments(directory)


def test_read_log_stitches_segments_and_active_file(tmp_path):
    from repro.gateway.wal.recovery import read_log

    directory, _ = _rotated_run(tmp_path, retain=2)
    log = read_log(directory)
    seqs = [record.seq for record in log.records]
    assert seqs == list(range(log.first_seq, log.last_seq + 1))
    assert log.segments  # some came from sealed segments
    assert log.first_seq > 1  # gc really dropped the oldest history
