"""Unit tests for Mechanism 1 (the Shapley Value Mechanism)."""

from __future__ import annotations

import math

import pytest

from repro import MechanismError, run_shapley


class TestBasics:
    def test_single_user_can_afford(self):
        result = run_shapley(10.0, {1: 10.0})
        assert result.serviced == frozenset({1})
        assert result.price == pytest.approx(10.0)

    def test_single_user_cannot_afford(self):
        result = run_shapley(10.0, {1: 9.99})
        assert not result.implemented
        assert result.payments == {}

    def test_even_split_all_afford(self):
        result = run_shapley(90.0, {1: 30.0, 2: 40.0, 3: 50.0})
        assert result.serviced == frozenset({1, 2, 3})
        assert result.price == pytest.approx(30.0)

    def test_no_bidders(self):
        result = run_shapley(5.0, {})
        assert not result.implemented
        assert result.price == 0.0

    def test_all_zero_bids(self):
        result = run_shapley(5.0, {1: 0.0, 2: 0.0})
        assert not result.implemented

    def test_boundary_bid_exactly_share_is_kept(self):
        # p = 50 on the second round; a bid of exactly 50 must stay.
        result = run_shapley(100.0, {1: 50.0, 2: 50.0})
        assert result.serviced == frozenset({1, 2})
        assert result.price == pytest.approx(50.0)

    def test_eviction_cascade(self):
        # 4 users: p=25 evicts u4; p=33.3 evicts u3; p=50 keeps u1,u2.
        result = run_shapley(
            100.0, {1: 80.0, 2: 50.0, 3: 30.0, 4: 10.0}
        )
        assert result.serviced == frozenset({1, 2})
        assert result.price == pytest.approx(50.0)
        assert result.rounds >= 3

    def test_full_collapse(self):
        result = run_shapley(100.0, {1: 49.0, 2: 49.0})
        assert not result.implemented


class TestCostRecovery:
    def test_revenue_equals_cost_when_implemented(self):
        result = run_shapley(77.0, {1: 77.0, 2: 40.0, 3: 39.0})
        assert result.implemented
        assert result.revenue == pytest.approx(77.0)

    def test_payments_uniform(self):
        result = run_shapley(60.0, {1: 100.0, 2: 100.0, 3: 100.0})
        assert all(p == pytest.approx(20.0) for p in result.payments.values())
        assert len(result.payments) == 3


class TestInfiniteBids:
    def test_infinite_bid_always_serviced(self):
        result = run_shapley(100.0, {1: math.inf, 2: 1.0})
        assert 1 in result.serviced
        assert 2 not in result.serviced
        assert result.price == pytest.approx(100.0)

    def test_infinite_bids_share_evenly(self):
        result = run_shapley(100.0, {1: math.inf, 2: math.inf, 3: 26.0})
        # p = 100/3 = 33.3 > 26 evicts user 3; remaining two split 50/50.
        assert result.serviced == frozenset({1, 2})
        assert result.price == pytest.approx(50.0)

    def test_infinite_bid_pulls_in_marginal_user(self):
        result = run_shapley(100.0, {1: math.inf, 2: 50.0})
        assert result.serviced == frozenset({1, 2})
        assert result.price == pytest.approx(50.0)


class TestValidation:
    def test_zero_cost_rejected(self):
        with pytest.raises(MechanismError):
            run_shapley(0.0, {1: 10.0})

    def test_negative_cost_rejected(self):
        with pytest.raises(MechanismError):
            run_shapley(-5.0, {1: 10.0})

    def test_negative_bid_rejected(self):
        with pytest.raises(MechanismError):
            run_shapley(10.0, {1: -1.0})

    def test_nan_bid_rejected(self):
        with pytest.raises(MechanismError):
            run_shapley(10.0, {1: math.nan})


class TestTruthfulnessByCases:
    """The classical argument from Section 4.1, as concrete cases."""

    def test_underbid_below_share_loses_service(self):
        truthful = run_shapley(100.0, {1: 60.0, 2: 60.0})
        assert truthful.serviced == frozenset({1, 2})
        lied = run_shapley(100.0, {1: 40.0, 2: 60.0})
        assert 1 not in lied.serviced
        # Utility drops from 60 - 50 = 10 to 0.
        assert 60.0 - truthful.payment(1) == pytest.approx(10.0)
        assert lied.payment(1) == 0.0

    def test_underbid_above_share_changes_nothing(self):
        truthful = run_shapley(100.0, {1: 60.0, 2: 60.0})
        lied = run_shapley(100.0, {1: 55.0, 2: 60.0})
        assert lied.serviced == truthful.serviced
        assert lied.price == pytest.approx(truthful.price)

    def test_overbid_can_only_buy_overpriced_service(self):
        # Truthfully unaffordable: value 40 < share 50.
        truthful = run_shapley(100.0, {1: 40.0, 2: 60.0})
        assert 1 not in truthful.serviced
        lied = run_shapley(100.0, {1: 50.0, 2: 60.0})
        assert 1 in lied.serviced
        # She pays 50 for a true value of 40: utility -10 < 0.
        assert 40.0 - lied.payment(1) == pytest.approx(-10.0)
