"""Index and extra-operator edge cases not covered by the core suite.

Covers the corners ISSUE 3 calls out: ``SortedIndex.range`` with
``low > high``, open-ended ranges on empty tables, ``HashIndex.contains``
meter charging, the bulk probe APIs the vector path relies on, and the
:mod:`repro.db.extra_operators` paths tier-1 did not exercise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import (
    CostMeter,
    Distinct,
    GroupAggregate,
    HashIndex,
    Limit,
    Schema,
    SeqScan,
    Sort,
    SortedIndex,
    Table,
    top_k,
)
from repro.errors import QueryError


@pytest.fixture()
def people():
    table = Table("people", Schema.of(pid="int", age="int", team="int"))
    table.extend([(1, 30, 0), (2, 25, 0), (3, 41, 1), (4, 25, 2), (5, 30, 1)])
    return table


@pytest.fixture()
def empty():
    return Table("empty", Schema.of(pid="int", age="int", team="int"))


class TestSortedIndexEdges:
    def test_inverted_range_raises_before_charging(self, people):
        index = SortedIndex(people, "age")
        meter = CostMeter()
        with pytest.raises(QueryError):
            list(index.range(30, 25, meter))
        with pytest.raises(QueryError):
            index.range_rids(30, 25, meter)
        assert meter.probe_count == 0
        assert meter.rows_emitted == 0

    def test_open_ranges_on_empty_table(self, empty):
        index = SortedIndex(empty, "age")
        meter = CostMeter()
        assert list(index.range(None, None, meter)) == []
        assert list(index.range(None, 10, meter)) == []
        assert list(index.range(10, None, meter)) == []
        assert index.range_rids(None, None, meter).size == 0
        assert meter.probe_count == 4
        assert meter.rows_emitted == 0
        assert index.min_key() is None
        assert index.max_key() is None
        assert len(index) == 0

    def test_half_open_ranges(self, people):
        index = SortedIndex(people, "age")
        meter = CostMeter()
        below = [r[0] for r in index.range(None, 29, meter)]
        assert sorted(below) == [2, 4]
        above = [r[0] for r in index.range(31, None, meter)]
        assert above == [3]

    def test_range_rids_matches_range(self, people):
        index = SortedIndex(people, "age")
        iterator_meter, bulk_meter = CostMeter(), CostMeter()
        rows = list(index.range(25, 30, iterator_meter))
        rids = index.range_rids(25, 30, bulk_meter)
        assert [people.row(r) for r in rids.tolist()] == rows
        assert iterator_meter == bulk_meter

    def test_degenerate_single_key_range(self, people):
        index = SortedIndex(people, "age")
        rows = list(index.range(25, 25, CostMeter()))
        assert sorted(r[0] for r in rows) == [2, 4]


class TestHashIndexEdges:
    def test_contains_charges_one_probe_per_call(self, people):
        index = HashIndex(people, "age")
        meter = CostMeter()
        assert index.contains(25, meter)
        assert not index.contains(99, meter)
        assert index.contains(41, meter)
        assert meter.probe_count == 3
        assert meter.rows_emitted == 0
        assert meter.scan_bytes == 0.0
        assert meter.build_bytes == 0.0

    def test_bulk_probe_on_empty_table(self, empty):
        index = HashIndex(empty, "age")
        meter = CostMeter()
        rids = index.lookup_rids_many([1, 2, 3], meter)
        assert rids.size == 0
        assert meter.probe_count == 3
        assert meter.rows_emitted == 0

    def test_bulk_probe_with_no_values(self, people):
        index = HashIndex(people, "age")
        meter = CostMeter()
        assert index.lookup_rids_many([], meter).size == 0
        assert meter.probe_count == 0
        assert meter.rows_emitted == 0

    def test_bulk_probe_ignores_rows_after_build(self, people):
        """The bulk path answers from the same snapshot as the dict path."""
        index = HashIndex(people, "age")
        people.insert((6, 25, 0))
        dict_rows = list(index.lookup(25, CostMeter()))
        bulk_rids = index.lookup_rids_many([25], CostMeter())
        assert [people.row(r) for r in bulk_rids.tolist()] == dict_rows

    def test_bulk_probe_repeated_values(self, people):
        index = HashIndex(people, "team")
        meter = CostMeter()
        rids = index.lookup_rids_many(np.asarray([1, 1, 0]), meter)
        assert rids.tolist() == [2, 4, 2, 4, 0, 1]
        assert meter.probe_count == 3
        assert meter.rows_emitted == 6


class TestScalarErrorReporting:
    def test_message_reports_rows_and_columns(self):
        from repro.db.engine import QueryResult

        multi_column = QueryResult(
            rows=[(1, 2)], meter=CostMeter(), source="base"
        )
        with pytest.raises(QueryError, match=r"1 row\(s\) x 2 column\(s\)"):
            multi_column.scalar()
        no_rows = QueryResult(rows=[], meter=CostMeter(), source="base")
        with pytest.raises(QueryError, match=r"0 row\(s\) x 0 column\(s\)"):
            no_rows.scalar()
        multi_row = QueryResult(
            rows=[(1,), (2,)], meter=CostMeter(), source="base"
        )
        with pytest.raises(QueryError, match=r"2 row\(s\) x 1 column\(s\)"):
            multi_row.scalar()
        assert QueryResult(rows=[(7,)], meter=CostMeter(), source="base").scalar() == 7


class TestExtraOperatorEdges:
    def test_limit_zero_emits_nothing(self, people):
        meter = CostMeter()
        assert Limit(SeqScan(people), 0).materialize(meter) == []
        # The child scan is never started, so nothing is charged at all.
        assert meter.scan_bytes == 0.0

    def test_limit_negative_rejected(self, people):
        with pytest.raises(QueryError):
            Limit(SeqScan(people), -1)

    def test_limit_larger_than_input(self, people):
        rows = Limit(SeqScan(people), 99).materialize(CostMeter())
        assert len(rows) == len(people)

    def test_sort_descending_charges_build(self, people):
        meter = CostMeter()
        rows = Sort(SeqScan(people), "age", descending=True).materialize(meter)
        ages = [r[1] for r in rows]
        assert ages == sorted(ages, reverse=True)
        assert meter.build_bytes == len(people) * people.schema.row_width
        assert meter.rows_emitted == len(people)

    def test_distinct_charges_probe_per_row(self, people):
        meter = CostMeter()
        rows = Distinct(SeqScan(people)).materialize(meter)
        assert len(rows) == len(people)  # all rows unique
        assert meter.probe_count == len(people)

    def test_group_aggregate_functions(self, people):
        sums = dict(
            GroupAggregate(SeqScan(people), "team", "age", "sum").materialize(
                CostMeter()
            )
        )
        assert sums == {0: 55.0, 1: 71.0, 2: 25.0}
        avgs = dict(
            GroupAggregate(SeqScan(people), "team", "age", "avg").materialize(
                CostMeter()
            )
        )
        assert avgs[0] == pytest.approx(27.5)
        lows = dict(
            GroupAggregate(SeqScan(people), "team", "age", "min").materialize(
                CostMeter()
            )
        )
        assert lows == {0: 25.0, 1: 30.0, 2: 25.0}
        counts = dict(
            GroupAggregate(SeqScan(people), "team", "pid", "count").materialize(
                CostMeter()
            )
        )
        assert counts == {0: 2, 1: 2, 2: 1}
        assert all(type(v) is int for v in counts.values())

    def test_group_aggregate_unknown_function(self, people):
        with pytest.raises(QueryError):
            GroupAggregate(SeqScan(people), "team", "age", "median")

    def test_group_aggregate_empty_input(self, empty):
        rows = GroupAggregate(SeqScan(empty), "team", "age", "max").materialize(
            CostMeter()
        )
        assert rows == []

    def test_top_k(self, people):
        rows = top_k(SeqScan(people), "age", 2).materialize(CostMeter())
        assert [r[1] for r in rows] == [41, 30]
        bottom = top_k(SeqScan(people), "age", 2, descending=False).materialize(
            CostMeter()
        )
        assert [r[1] for r in bottom] == [25, 25]
