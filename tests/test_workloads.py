"""Tests for the synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GameConfigError
from repro.workloads import (
    additive_duration_game,
    additive_single_slot_game,
    early_exponential_slots,
    late_exponential_slots,
    sample_costs,
    sample_substitute_sets,
    substitutable_game,
    uniform_slots,
)


class TestArrivals:
    def test_uniform_range(self):
        slots = uniform_slots(0, 1000, 12)
        assert slots.min() >= 1 and slots.max() <= 12
        # All slots are hit over a big sample.
        assert len(set(slots.tolist())) == 12

    def test_early_skew(self):
        slots = early_exponential_slots(0, 2000, 12)
        assert slots.min() >= 1 and slots.max() <= 12
        assert np.mean(slots) < 3.0  # clustered at the start

    def test_late_skew(self):
        slots = late_exponential_slots(0, 2000, 12)
        assert slots.min() >= 1 and slots.max() <= 12
        assert np.mean(slots) > 10.0  # clustered at the end

    def test_zero_users(self):
        assert len(uniform_slots(0, 0, 5)) == 0

    def test_validation(self):
        with pytest.raises(GameConfigError):
            uniform_slots(0, -1, 5)
        with pytest.raises(GameConfigError):
            uniform_slots(0, 1, 0)
        with pytest.raises(GameConfigError):
            early_exponential_slots(0, 1, 5, mean=0.0)
        with pytest.raises(GameConfigError):
            late_exponential_slots(0, 1, 5, mean=-1.0)


class TestSubstituteSampling:
    def test_set_sizes(self):
        sets = sample_substitute_sets(0, 50, 12, 3)
        assert len(sets) == 50
        assert all(len(s) == 3 for s in sets)
        assert all(s <= set(range(12)) for s in sets)

    def test_costs_mean(self):
        costs = sample_costs(0, 5000, mean_cost=2.0)
        values = list(costs.values())
        assert np.mean(values) == pytest.approx(2.0, rel=0.05)
        assert min(values) > 0

    def test_validation(self):
        with pytest.raises(GameConfigError):
            sample_substitute_sets(0, 5, 4, 5)
        with pytest.raises(GameConfigError):
            sample_substitute_sets(0, 5, 0, 1)
        with pytest.raises(GameConfigError):
            sample_costs(0, 0, 1.0)
        with pytest.raises(GameConfigError):
            sample_costs(0, 3, 0.0)


class TestScenarios:
    def test_additive_single_slot(self):
        rng = np.random.default_rng(0)
        bids = additive_single_slot_game(rng, 6, 12)
        assert len(bids) == 6
        for bid in bids.values():
            assert bid.start == bid.end
            assert 1 <= bid.start <= 12
            assert 0.0 <= bid.total() < 1.0

    def test_additive_duration_splits_value(self):
        rng = np.random.default_rng(0)
        bids = additive_duration_game(rng, 6, 12, duration=4)
        for bid in bids.values():
            assert bid.end - bid.start + 1 == 4
            values = bid.schedule.values
            assert max(values) == pytest.approx(min(values))

    def test_substitutable_game(self):
        rng = np.random.default_rng(0)
        bids = substitutable_game(rng, 10, 12, optimizations=12, choose=3)
        for bid in bids.values():
            assert len(bid.substitutes) == 3
            assert all(0 <= j < 12 for j in bid.substitutes)

    def test_arrival_option(self):
        rng = np.random.default_rng(0)
        bids = additive_single_slot_game(rng, 500, 12, arrival="early")
        starts = [b.start for b in bids.values()]
        assert np.mean(starts) < 3.0

    def test_unknown_arrival_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(GameConfigError):
            additive_single_slot_game(rng, 5, 12, arrival="gaussian")
        with pytest.raises(GameConfigError):
            substitutable_game(rng, 5, 12, 4, 2, arrival="gaussian")

    def test_duration_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(GameConfigError):
            additive_duration_game(rng, 5, 12, duration=0)

    def test_reproducible_with_seeded_rng(self):
        a = additive_single_slot_game(np.random.default_rng(5), 6, 12)
        b = additive_single_slot_game(np.random.default_rng(5), 6, 12)
        assert all(a[i].schedule == b[i].schedule for i in range(6))
