"""Tests for the shared utilities (RNG plumbing, numeric helpers)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import GameConfigError
from repro.utils import close, ensure_rng, isclose_or_greater, spawn_rngs, weighted_mean
from repro.utils.numeric import is_positive_finite_or_inf


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seeds_deterministically(self):
        a = ensure_rng(42).uniform()
        b = ensure_rng(42).uniform()
        assert a == b

    def test_generator_passes_through(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(7)), np.random.Generator)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count_and_independence(self):
        children = spawn_rngs(1, 5)
        assert len(children) == 5
        draws = [c.uniform() for c in children]
        assert len(set(draws)) == 5

    def test_deterministic_given_seed(self):
        a = [c.uniform() for c in spawn_rngs(9, 3)]
        b = [c.uniform() for c in spawn_rngs(9, 3)]
        assert a == b

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(GameConfigError):
            spawn_rngs(1, -1)


class TestNumericHelpers:
    def test_close(self):
        assert close(1.0, 1.0 + 1e-12)
        assert not close(1.0, 1.01)

    def test_isclose_or_greater(self):
        assert isclose_or_greater(2.0, 1.0)
        assert isclose_or_greater(1.0, 1.0 + 1e-12)
        assert not isclose_or_greater(1.0, 1.1)

    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == pytest.approx(2.0)
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_weighted_mean_zero_weights(self):
        with pytest.raises(GameConfigError):
            weighted_mean([1.0], [0.0])

    def test_weighted_mean_length_mismatch(self):
        with pytest.raises(GameConfigError):
            weighted_mean([1.0, 2.0], [1.0])

    @pytest.mark.parametrize(
        "value,expected",
        [
            (1.0, True),
            (1e-12, True),
            (math.inf, True),
            (0.0, False),
            (-1.0, False),
            (math.nan, False),
        ],
    )
    def test_is_positive_finite_or_inf(self, value, expected):
        assert is_positive_finite_or_inf(value) is expected
