"""Tests for the planner's view selection and the query engine."""

from __future__ import annotations

import pytest

from repro.db import Catalog, CostMeter, MaterializedView, QueryEngine, Schema, Table
from repro.db.planner import (
    histogram_plan,
    members_plan,
    view_name_for,
    what_if_scan_bytes,
)


def make_snapshot(catalog: Catalog, name: str, assignment: dict) -> Table:
    """A snapshot table with the astronomy schema from {pid: halo}."""
    table = Table(
        name,
        Schema.of(
            pid="int", x="float", y="float", z="float",
            vx="float", vy="float", vz="float", mass="float", halo="int",
        ),
    )
    for pid, halo in assignment.items():
        table.insert((pid, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, halo))
    return catalog.create_table(table)


@pytest.fixture()
def catalog():
    cat = Catalog()
    # Snapshot 2 (newest): halo 0 = {1,2,3}, halo 1 = {4,5}, unclustered 6.
    make_snapshot(cat, "snap_02", {1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: -1})
    # Snapshot 1: halo 7 = {1,2,4}, halo 8 = {3,5}, unclustered 6.
    make_snapshot(cat, "snap_01", {1: 7, 2: 7, 4: 7, 3: 8, 5: 8, 6: -1})
    return cat


class TestPlanner:
    def test_members_uses_base_without_view(self, catalog):
        choice = members_plan(catalog, "snap_02", 0)
        assert choice.source == "base"
        rows = choice.plan.materialize(CostMeter())
        assert sorted(r[0] for r in rows) == [1, 2, 3]

    def test_members_uses_view_when_present(self, catalog):
        base = catalog.table("snap_02")
        catalog.create_view(
            MaterializedView.projection_of(
                view_name_for("snap_02"), base, ["pid", "halo"]
            )
        )
        choice = members_plan(catalog, "snap_02", 0)
        assert choice.source == "view"
        rows = choice.plan.materialize(CostMeter())
        assert sorted(r[0] for r in rows) == [1, 2, 3]

    def test_view_and_base_agree(self, catalog):
        base_rows = histogram_plan(catalog, "snap_01", {1, 2, 3}).plan.materialize(
            CostMeter()
        )
        catalog.create_view(
            MaterializedView.projection_of(
                view_name_for("snap_01"), catalog.table("snap_01"), ["pid", "halo"]
            )
        )
        view_choice = histogram_plan(catalog, "snap_01", {1, 2, 3})
        assert view_choice.source == "view"
        assert sorted(view_choice.plan.materialize(CostMeter())) == sorted(base_rows)

    def test_view_scan_is_cheaper(self, catalog):
        before = CostMeter()
        members_plan(catalog, "snap_02", 0).plan.materialize(before)
        catalog.create_view(
            MaterializedView.projection_of(
                view_name_for("snap_02"), catalog.table("snap_02"), ["pid", "halo"]
            )
        )
        after = CostMeter()
        members_plan(catalog, "snap_02", 0).plan.materialize(after)
        assert after.scan_bytes < before.scan_bytes

    def test_what_if_estimates(self, catalog):
        without, with_view = what_if_scan_bytes(catalog, "snap_02")
        assert without == 6 * 72
        assert with_view == 6 * 16
        assert with_view < without


class TestQueryEngine:
    def test_halo_members(self, catalog):
        engine = QueryEngine(catalog)
        result = engine.halo_members("snap_02", 1)
        assert sorted(r[0] for r in result.rows) == [4, 5]

    def test_progenitor_histogram(self, catalog):
        engine = QueryEngine(catalog)
        result = engine.progenitor_histogram("snap_01", {1, 2, 3})
        assert dict(result.rows) == {7: 2, 8: 1}

    def test_top_contributor(self, catalog):
        engine = QueryEngine(catalog)
        # Halo 0 of snap_02 = {1,2,3}: two land in 7, one in 8.
        top, meter = engine.top_contributor("snap_02", 0, "snap_01")
        assert top == 7
        assert meter.scan_bytes > 0

    def test_top_contributor_excludes_unclustered(self, catalog):
        engine = QueryEngine(catalog)
        # A halo of only unclustered particles yields no progenitor.
        make_snapshot(catalog, "snap_03", {6: 4})
        top, _ = engine.top_contributor("snap_03", 4, "snap_01")
        assert top is None

    def test_top_contributor_tie_breaks_to_smaller_label(self, catalog):
        engine = QueryEngine(catalog)
        # Halo 1 of snap_02 = {4,5}: one lands in 7, one in 8 -> tie -> 7.
        top, _ = engine.top_contributor("snap_02", 1, "snap_01")
        assert top == 7

    def test_halo_chain(self, catalog):
        engine = QueryEngine(catalog)
        chain, meter = engine.halo_chain(["snap_02", "snap_01"], 0)
        assert chain == [0, 7]

    def test_halo_chain_requires_tables(self, catalog):
        engine = QueryEngine(catalog)
        with pytest.raises(Exception):
            engine.halo_chain([], 0)

    def test_contributors_to(self, catalog):
        engine = QueryEngine(catalog)
        contributors, _ = engine.contributors_to("snap_02", 0, ["snap_01"])
        assert contributors == {"snap_01": 7}

    def test_scalar_helper(self, catalog):
        engine = QueryEngine(catalog)
        result = engine.halo_members("snap_02", 99)  # no such halo
        assert result.rows == []
        with pytest.raises(Exception):
            result.scalar()
