"""Tests for the figure-regeneration and gateway CLI.

Every registered command is both parsed and smoked at minimal scale, so
argument wiring cannot silently rot (ISSUE 5 satellite): ``list``, each
``fig*``, ``all``, ``fleet`` (both races), ``advise``, and ``replay``/
``serve``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out
        for extra in ("fleet", "advise", "replay"):
            assert extra in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_fig1_flags(self):
        args = build_parser().parse_args(["fig1", "--values", "engine", "--samples", "7"])
        assert args.values == "engine"
        assert args.samples == 7

    def test_common_flags(self):
        args = build_parser().parse_args(["fig2a", "--trials", "9", "--seed", "3"])
        assert args.trials == 9
        assert args.seed == 3

    @pytest.mark.parametrize("name", sorted(FIGURES) + ["all"])
    def test_every_figure_command_parses(self, name):
        args = build_parser().parse_args([name, "--trials", "1", "--summary"])
        assert args.command == name

    def test_fleet_flags(self):
        args = build_parser().parse_args(
            ["fleet", "--games", "3", "--users", "50", "--gateway"]
        )
        assert (args.games, args.users, args.gateway) == (3, 50, True)

    def test_advise_flags(self):
        args = build_parser().parse_args(
            ["advise", "--particles", "500", "--engine-mode", "iterator"]
        )
        assert args.particles == 500
        assert args.engine_mode == "iterator"

    def test_replay_flags(self):
        args = build_parser().parse_args(
            ["replay", "t.jsonl", "--strict", "--particles", "100"]
        )
        assert str(args.trace) == "t.jsonl"
        assert args.strict and args.particles == 100

    def test_serve_is_no_longer_a_replay_alias(self):
        # 'serve' once aliased 'replay'; it now starts the network
        # server and takes no trace positional.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "t.jsonl"])

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--max-pending", "8",
             "--max-delay", "0.01", "--wal-dir", "w"]
        )
        assert args.port == 0 and args.max_pending == 8
        assert args.max_delay == 0.01 and str(args.wal_dir) == "w"

    def test_wal_gc_flags(self):
        args = build_parser().parse_args(["wal-gc", "w", "--retain", "3"])
        assert str(args.wal_dir) == "w" and args.retain == 3


class TestExecution:
    def test_fig2a_prints_table(self, capsys):
        assert main(["fig2a", "--trials", "3", "--rows", "5"]) == 0
        out = capsys.readouterr().out
        assert "AddOn Utility" in out
        assert "Regret Balance" in out

    def test_summary_mode(self, capsys):
        assert main(["fig3a", "--trials", "2", "--summary"]) == 0
        out = capsys.readouterr().out
        assert "mean" in out

    def test_out_directory(self, tmp_path, capsys):
        assert main(["fig5a", "--trials", "2", "--out", str(tmp_path)]) == 0
        files = list(tmp_path.glob("*.txt"))
        assert len(files) == 1
        assert "SubstOn Utility" in files[0].read_text()

    def test_fig1_paper_mode(self, capsys):
        assert main(["fig1", "--samples", "3", "--rows", "4"]) == 0
        out = capsys.readouterr().out
        assert "Baseline Cost" in out

    @pytest.mark.parametrize(
        "name", ["fig2b", "fig2c", "fig2d", "fig3b", "fig4", "fig5b"]
    )
    def test_remaining_figures_smoke(self, name, capsys):
        assert main([name, "--trials", "1", "--summary"]) == 0
        assert "mean" in capsys.readouterr().out

    def test_fleet_smoke(self, capsys):
        assert main(
            ["fleet", "--games", "2", "--users", "60", "--slots", "20",
             "--repeats", "1", "--shards", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_fleet_gateway_smoke(self, capsys):
        assert main(
            ["fleet", "--games", "2", "--users", "60", "--slots", "20",
             "--repeats", "1", "--gateway"]
        ) == 0
        out = capsys.readouterr().out
        assert "dispatch overhead" in out

    def test_advise_smoke(self, capsys):
        assert main(
            ["advise", "--particles", "800", "--snapshots", "2", "--slots", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "metered workload cost" in out
        assert "candidates mined" in out


class TestReplayCommand:
    TRACE = [
        {"api": "1.6", "kind": "Configure",
         "optimizations": [["idx", 40.0]], "horizon": 3, "shards": 1},
        {"api": "1.6", "kind": "SubmitBids", "tenant": "ann",
         "bids": [["idx", 1, [30.0, 15.0]]]},
        {"api": "1.6", "kind": "SubmitBids", "tenant": "bob",
         "bids": [["idx", 1, [20.0]]]},
        {"api": "1.6", "kind": "AdvanceSlots", "slots": 3},
        {"api": "1.6", "kind": "LedgerQuery", "tenant": "ann"},
    ]

    def _write(self, tmp_path, lines):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        return path

    def test_replay_smoke(self, tmp_path, capsys):
        path = self._write(tmp_path, self.TRACE)
        replies = tmp_path / "replies.jsonl"
        assert main(["replay", str(path), "--replies", str(replies)]) == 0
        out = capsys.readouterr().out
        assert "5 replies" in out
        written = [json.loads(line) for line in replies.read_text().splitlines()]
        assert [w["kind"] for w in written] == [
            "ConfigReply", "BidsReply", "BidsReply", "SlotReply", "LedgerReply",
        ]

    def test_serve_drains_on_sigterm(self, tmp_path, capsys):
        # The repointed 'serve' runs the real network server: raise
        # SIGTERM from a timer thread and the CLI must drain and exit 0.
        import os
        import signal
        import threading

        timer = threading.Timer(0.3, os.kill, (os.getpid(), signal.SIGTERM))
        timer.start()
        try:
            assert main(["serve", "--port", "0"]) == 0
        finally:
            timer.cancel()
        out = capsys.readouterr().out
        assert "serving on http://" in out
        assert "drained" in out

    def test_strict_fails_on_errors(self, tmp_path, capsys):
        path = self._write(
            tmp_path, self.TRACE + [{"api": "1.6", "kind": "Mystery"}]
        )
        assert main(["replay", str(path)]) == 0  # tolerant by default
        capsys.readouterr()
        assert main(["replay", str(path), "--strict"]) == 1
        assert "protocol" in capsys.readouterr().out

    def test_replay_with_universe_queries(self, tmp_path, capsys):
        trace = [
            {"api": "1.6", "kind": "RunQuery", "tenant": "ada",
             "query": "members", "table": "snap_02", "halo": 0},
        ]
        path = self._write(tmp_path, trace)
        assert main(["replay", str(path), "--particles", "300",
                     "--snapshots", "2"]) == 0
        out = capsys.readouterr().out
        assert "QueryReply" in out


class TestDurabilityCommands:
    TRACE = TestReplayCommand.TRACE

    def _write(self, tmp_path, lines):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        return path

    def test_replay_with_wal_then_recover(self, tmp_path, capsys):
        path = self._write(tmp_path, self.TRACE)
        wal_dir = tmp_path / "wal"
        assert main(["replay", str(path), "--wal-dir", str(wal_dir),
                     "--checkpoint-every", "2"]) == 0
        out = capsys.readouterr().out
        assert "write-ahead log" in out
        assert (wal_dir / "wal.jsonl").exists()
        assert main(["recover", str(wal_dir)]) == 0
        out = capsys.readouterr().out
        assert "wal records" in out
        assert "slot 3/3" in out

    def test_recover_parses_checkpoint_flag(self):
        args = build_parser().parse_args(["recover", "d", "--checkpoint"])
        assert args.command == "recover" and args.checkpoint

    def test_recover_fails_cleanly_on_a_non_wal_directory(self, tmp_path, capsys):
        assert main(["recover", str(tmp_path)]) == 1
        assert "recovery failed" in capsys.readouterr().out

    def test_checkpoint_command_compacts_the_wal(self, tmp_path, capsys):
        path = self._write(tmp_path, self.TRACE)
        wal_dir = tmp_path / "wal"
        assert main(["replay", str(path), "--wal-dir", str(wal_dir)]) == 0
        capsys.readouterr()
        assert main(["checkpoint", str(wal_dir)]) == 0
        assert "checkpoint written" in capsys.readouterr().out
        # The fresh checkpoint covers every record: recovery still works.
        assert main(["recover", str(wal_dir)]) == 0
        assert "slot 3/3" in capsys.readouterr().out

    def test_wal_gc_compacts_a_replayed_wal(self, tmp_path, capsys):
        path = self._write(tmp_path, self.TRACE)
        wal_dir = tmp_path / "wal"
        assert main(["replay", str(path), "--wal-dir", str(wal_dir),
                     "--checkpoint-every", "2"]) == 0
        capsys.readouterr()
        assert main(["wal-gc", str(wal_dir), "--retain", "1"]) == 0
        out = capsys.readouterr().out
        assert "checkpoints kept" in out and "deleted" in out
        # Everything before the fresh checkpoint is gone; recovery from
        # the compacted directory still reproduces the final state.
        assert main(["recover", str(wal_dir)]) == 0
        assert "slot 3/3" in capsys.readouterr().out

    def test_wal_gc_fails_cleanly_on_a_non_wal_directory(self, tmp_path, capsys):
        assert main(["wal-gc", str(tmp_path)]) == 1
        assert "wal-gc failed" in capsys.readouterr().out

    def test_list_mentions_durability_commands(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "recover" in out and "checkpoint" in out and "wal-gc" in out
        assert "serve" in out
        assert "stats" in out


class TestStatsCommand:
    def test_stats_flags(self):
        args = build_parser().parse_args(
            ["stats", "--host", "10.0.0.1", "--port", "9", "--json"]
        )
        assert (args.host, args.port, args.json) == ("10.0.0.1", 9, True)
        defaults = build_parser().parse_args(["stats"])
        assert (defaults.host, defaults.port) == ("127.0.0.1", 8321)

    @pytest.fixture()
    def running_gateway(self):
        from repro.gateway import Configure, PricingService
        from repro.gateway.client import GatewayClient
        from repro.gateway.server import ServerConfig, ServerThread

        service = PricingService()
        thread = ServerThread(service, ServerConfig(port=0))
        host, port = thread.start()
        client = GatewayClient(host, port)
        client.request(Configure(optimizations=(("idx", 40.0),), horizon=3))
        client.close()
        try:
            yield host, port
        finally:
            thread.stop()

    def test_stats_prints_prometheus_text(self, running_gateway, capsys):
        from promparse import parse_exposition

        host, port = running_gateway
        assert main(["stats", "--host", host, "--port", str(port)]) == 0
        out = capsys.readouterr().out
        types, _samples = parse_exposition(out)
        assert types["repro_server_requests_total"] == "counter"

    def test_stats_json_prints_the_reply_wire_dict(
        self, running_gateway, capsys
    ):
        host, port = running_gateway
        assert main(
            ["stats", "--host", host, "--port", str(port), "--json"]
        ) == 0
        wire = json.loads(capsys.readouterr().out)
        assert wire["kind"] == "MetricsReply"
        names = {entry[0] for entry in wire["metrics"]}
        assert "repro_dispatch_total" in names

    def test_stats_fails_cleanly_without_a_gateway(self, capsys):
        # Port 1 is privileged and unbound: connection refused, fast.
        assert main(["stats", "--port", "1"]) == 1
        assert "stats failed" in capsys.readouterr().out
