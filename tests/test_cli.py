"""Tests for the figure-regeneration CLI."""

from __future__ import annotations

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_fig1_flags(self):
        args = build_parser().parse_args(["fig1", "--values", "engine", "--samples", "7"])
        assert args.values == "engine"
        assert args.samples == 7

    def test_common_flags(self):
        args = build_parser().parse_args(["fig2a", "--trials", "9", "--seed", "3"])
        assert args.trials == 9
        assert args.seed == 3


class TestExecution:
    def test_fig2a_prints_table(self, capsys):
        assert main(["fig2a", "--trials", "3", "--rows", "5"]) == 0
        out = capsys.readouterr().out
        assert "AddOn Utility" in out
        assert "Regret Balance" in out

    def test_summary_mode(self, capsys):
        assert main(["fig3a", "--trials", "2", "--summary"]) == 0
        out = capsys.readouterr().out
        assert "mean" in out

    def test_out_directory(self, tmp_path, capsys):
        assert main(["fig5a", "--trials", "2", "--out", str(tmp_path)]) == 0
        files = list(tmp_path.glob("*.txt"))
        assert len(files) == 1
        assert "SubstOn Utility" in files[0].read_text()

    def test_fig1_paper_mode(self, capsys):
        assert main(["fig1", "--samples", "3", "--rows", "4"]) == 0
        out = capsys.readouterr().out
        assert "Baseline Cost" in out
