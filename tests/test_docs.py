"""Documentation integrity: doctests, README claims, API.md executability,
DESIGN inventory."""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import repro

ROOT = Path(__file__).parent.parent


class TestDoctests:
    def test_package_docstring_examples_run(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 1


class TestReadme:
    README = (ROOT / "README.md").read_text()

    def test_mentions_every_top_level_package(self):
        import pkgutil

        for module in pkgutil.iter_modules(repro.__path__):
            if module.ispkg:
                assert module.name in self.README, (
                    f"README does not mention package {module.name!r}"
                )

    def test_quickstart_snippet_is_valid(self):
        # Extract and exec the first python code block.
        blocks = re.findall(r"```python\n(.*?)```", self.README, re.DOTALL)
        assert blocks, "README needs at least one python example"
        namespace: dict = {}
        for block in blocks:
            exec(block, namespace)  # noqa: S102 - our own documentation

    def test_examples_table_matches_directory(self):
        examples = {p.name for p in (ROOT / "examples").glob("*.py")}
        documented = set(re.findall(r"`(\w+\.py)`", self.README))
        assert documented <= examples
        assert "quickstart.py" in documented

    def test_documentation_map_links_api_reference(self):
        assert "API.md" in self.README, "README must link the API reference"


class TestApiReference:
    """API.md is executable documentation: names import, snippets run."""

    API = (ROOT / "API.md").read_text()

    def test_every_code_block_executes(self):
        blocks = re.findall(r"```python\n(.*?)```", self.API, re.DOTALL)
        assert len(blocks) >= 10, "API.md should document the full surface"
        for block in blocks:
            namespace: dict = {}
            exec(block, namespace)  # noqa: S102 - our own documentation

    def test_every_dotted_name_resolves(self):
        import importlib

        for match in sorted(set(re.findall(r"`(repro(?:\.\w+)+)`", self.API))):
            parts = match.split(".")
            resolved = None
            for split in range(len(parts), 0, -1):
                try:
                    resolved = importlib.import_module(".".join(parts[:split]))
                except ModuleNotFoundError:
                    continue
                for attr in parts[split:]:
                    resolved = getattr(resolved, attr, None)
                    if resolved is None:
                        break
                break
            assert resolved is not None, f"API.md references missing {match}"

    def test_every_imported_name_exists(self):
        # Every `from repro... import a, b` line in a snippet must name
        # real, importable attributes — executed blocks prove the imports
        # they use; this additionally catches names in unused positions.
        import importlib

        for module_name, names in re.findall(
            r"^from (repro[\w.]*) import (.+)$", self.API, re.MULTILINE
        ):
            module = importlib.import_module(module_name)
            for name in names.split(","):
                assert hasattr(module, name.strip()), (
                    f"API.md imports {name.strip()!r} from {module_name}, "
                    "which does not exist"
                )


class TestDesignDoc:
    DESIGN = (ROOT / "DESIGN.md").read_text()

    def test_every_figure_has_an_experiment_row(self):
        for fig in ("FIG1", "FIG2A", "FIG2B", "FIG2C", "FIG2D",
                    "FIG3A", "FIG3B", "FIG4", "FIG5A", "FIG5B"):
            assert fig in self.DESIGN

    def test_every_ablation_is_indexed(self):
        for abl in ("ABL1", "ABL2", "ABL3", "ABL4", "ABL5"):
            assert abl in self.DESIGN

    def test_referenced_modules_exist(self):
        import importlib

        for match in set(re.findall(r"`(repro\.[a-z_.]+)`", self.DESIGN)):
            module = match.rstrip(".")
            # Strip a trailing `.*` wildcard.
            module = module[:-2] if module.endswith(".*") else module
            try:
                importlib.import_module(module)
            except ModuleNotFoundError as exc:
                raise AssertionError(
                    f"DESIGN.md references missing module {module}"
                ) from exc


class TestExperimentsDoc:
    EXPERIMENTS = (ROOT / "EXPERIMENTS.md").read_text()

    def test_every_benchmark_file_is_referenced(self):
        for path in (ROOT / "benchmarks").glob("bench_*.py"):
            assert path.name in self.EXPERIMENTS, (
                f"EXPERIMENTS.md does not reference {path.name}"
            )

    def test_paper_vs_measured_columns(self):
        assert "| Paper claim | Measured |" in self.EXPERIMENTS
