"""The columnar path is invisible: identical rows, identical meters.

Property tests pitting every vector operator and the vector engine against
the iterator originals on randomized inputs. Equality is exact — same
tuples in the same order, same Python value types, and bit-identical
CostMeter totals (including the named counters) — because the metered
work is the paper's cost model and the physical rewrite must not move it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.astro.halos import friends_of_friends, friends_of_friends_reference
from repro.db import (
    And,
    Catalog,
    Col,
    ColumnBatch,
    Const,
    CostMeter,
    Eq,
    Filter,
    Ge,
    GroupCount,
    HashIndex,
    HashJoin,
    In,
    IndexLookup,
    Lt,
    MaterializedView,
    Ne,
    Not,
    Or,
    Project,
    QueryEngine,
    Schema,
    SeqScan,
    Sort,
    Table,
    to_vector,
)
from repro.db.planner import view_name_for
from repro.errors import QueryError, SchemaError

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),   # pid-ish key
        st.integers(min_value=-1, max_value=5),   # halo-ish group
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    ),
    max_size=40,
)


def make_table(rows, name="t") -> Table:
    table = Table(name, Schema.of(k="int", g="int", v="float"))
    table.extend(rows)
    return table


def assert_equivalent(plan) -> list:
    """Materialize ``plan`` both ways; assert rows, types, meters match."""
    vector_plan = to_vector(plan)
    assert vector_plan is not None, f"{type(plan).__name__} must translate"
    iterator_meter, vector_meter = CostMeter(), CostMeter()
    iterator_rows = plan.materialize(iterator_meter)
    vector_rows = vector_plan.materialize(vector_meter)
    assert iterator_rows == vector_rows
    assert iterator_meter == vector_meter
    for iterator_row, vector_row in zip(iterator_rows, vector_rows):
        for a, b in zip(iterator_row, vector_row):
            assert type(a) is type(b), (a, b)
    return iterator_rows


class TestOperatorEquivalence:
    @given(rows=rows_strategy)
    @settings(max_examples=100)
    def test_scan(self, rows):
        assert_equivalent(SeqScan(make_table(rows)))

    @given(rows=rows_strategy, a=st.integers(-1, 5), b=st.integers(0, 30))
    @settings(max_examples=100)
    def test_filter_predicates(self, rows, a, b):
        table = make_table(rows)
        predicates = [
            Eq(Col("g"), Const(a)),
            Ne(Col("g"), Const(a)),
            Lt(Col("k"), Const(b)),
            Ge(Col("k"), Const(b)),
            And(Ne(Col("g"), Const(-1)), Lt(Col("k"), Const(b))),
            Or(Eq(Col("g"), Const(a)), Eq(Col("k"), Const(b))),
            Not(Eq(Col("g"), Const(a))),
            In(Col("k"), {b, b + 1, 29}),
            In(Col("k"), frozenset()),
        ]
        for predicate in predicates:
            assert_equivalent(Filter(SeqScan(table), predicate))

    @given(rows=rows_strategy)
    @settings(max_examples=100)
    def test_project_and_group(self, rows):
        table = make_table(rows)
        assert_equivalent(Project(SeqScan(table), ["v", "k"]))
        assert_equivalent(GroupCount(SeqScan(table), "g"))
        assert_equivalent(
            GroupCount(
                Project(Filter(SeqScan(table), Ne(Col("g"), Const(-1))), ["k", "g"]),
                "g",
            )
        )

    @given(rows=rows_strategy, keys=st.lists(st.integers(0, 30), max_size=10))
    @settings(max_examples=100)
    def test_index_lookup(self, rows, keys):
        table = make_table(rows)
        index = HashIndex(table, "k")
        assert_equivalent(IndexLookup(index, keys))

    @given(
        rows=rows_strategy,
        teams=st.lists(
            st.tuples(st.integers(-1, 5), st.sampled_from("abcdef")),
            max_size=10,
            unique_by=lambda t: t[0],
        ),
    )
    @settings(max_examples=100)
    def test_hash_join(self, rows, teams):
        left = make_table(rows, "left")
        right = Table("right", Schema.of(tid="int", tname="str"))
        right.extend(teams)
        assert_equivalent(HashJoin(SeqScan(left), SeqScan(right), "g", "tid"))

    @given(rows=rows_strategy, teams=st.lists(st.integers(-1, 5), max_size=12))
    @settings(max_examples=60)
    def test_hash_join_duplicate_right_keys(self, rows, teams):
        left = make_table(rows, "left")
        right = Table("right", Schema.of(tid="int", rank="float"))
        right.extend((t, float(i)) for i, t in enumerate(teams))
        assert_equivalent(HashJoin(SeqScan(left), SeqScan(right), "g", "tid"))

    @given(rows=rows_strategy)
    @settings(max_examples=50)
    def test_untranslatable_falls_back(self, rows):
        table = make_table(rows)
        assert to_vector(Sort(SeqScan(table), "v")) is None


def snapshot_catalog(rng, n, path):
    """A randomized two-snapshot catalog with one access path installed."""
    catalog = Catalog()
    names = []
    for index in (1, 2):
        name = f"snap_0{index}"
        pids = rng.permutation(n)
        halos = rng.integers(-1, max(2, n // 6), size=n)
        table = Table.from_columns(
            name,
            Schema.of(
                pid="int", x="float", y="float", z="float", vx="float",
                vy="float", vz="float", mass="float", halo="int",
            ),
            {
                "pid": pids,
                "x": rng.normal(size=n), "y": rng.normal(size=n),
                "z": rng.normal(size=n), "vx": rng.normal(size=n),
                "vy": rng.normal(size=n), "vz": rng.normal(size=n),
                "mass": rng.uniform(0.5, 2.0, size=n),
                "halo": halos,
            },
        )
        catalog.create_table(table)
        names.append(name)
    if path == "view":
        for name in names:
            base = catalog.table(name)
            catalog.create_view(
                MaterializedView(
                    view_name_for(name),
                    lambda base=base: Project(
                        Filter(SeqScan(base), Ne(Col("halo"), Const(-1))),
                        ["pid", "halo"],
                    ),
                )
            )
    elif path == "index":
        for name in names:
            catalog.create_hash_index(name, "halo")
            catalog.create_hash_index(name, "pid")
    return catalog, names


class TestEngineEquivalence:
    @pytest.mark.parametrize("path", ["base", "view", "index"])
    @pytest.mark.parametrize("seed", [0, 7, 2012])
    def test_merger_tree_queries(self, path, seed):
        rng = np.random.default_rng(seed)
        catalog, names = snapshot_catalog(rng, n=int(rng.integers(30, 400)), path=path)
        iterator = QueryEngine(catalog, mode="iterator")
        vector = QueryEngine(catalog, mode="vector")
        for halo in range(5):
            members_i = iterator.halo_members(names[1], halo)
            members_v = vector.halo_members(names[1], halo)
            assert members_i.rows == members_v.rows
            assert members_i.meter == members_v.meter
            assert members_i.source == members_v.source

            top_i, meter_i = iterator.top_contributor(names[1], halo, names[0])
            top_v, meter_v = vector.top_contributor(names[1], halo, names[0])
            assert top_i == top_v
            assert meter_i == meter_v

        chain_i, chain_meter_i = iterator.halo_chain([names[1], names[0]], 0)
        chain_v, chain_meter_v = vector.halo_chain([names[1], names[0]], 0)
        assert chain_i == chain_v
        assert chain_meter_i == chain_meter_v

    def test_auto_mode_matches_both(self):
        rng = np.random.default_rng(3)
        catalog, names = snapshot_catalog(rng, n=120, path="base")
        auto = QueryEngine(catalog)  # default mode
        iterator = QueryEngine(catalog, mode="iterator")
        assert auto.mode == "auto"
        result_auto = auto.progenitor_histogram(names[0], frozenset(range(40)))
        result_iter = iterator.progenitor_histogram(names[0], frozenset(range(40)))
        assert result_auto.rows == result_iter.rows
        assert result_auto.meter == result_iter.meter

    def test_vector_mode_rejects_untranslatable(self):
        table = make_table([(1, 0, 1.0)])
        catalog = Catalog()
        catalog.create_table(table)
        engine = QueryEngine(catalog, mode="vector")
        with pytest.raises(QueryError):
            engine.execute_plan(Sort(SeqScan(table), "v"), CostMeter())

    def test_bad_mode_rejected(self):
        with pytest.raises(QueryError):
            QueryEngine(Catalog(), mode="turbo")


class TestColumnarTable:
    @given(rows=rows_strategy)
    @settings(max_examples=100)
    def test_from_columns_equals_row_inserts(self, rows):
        by_rows = make_table(rows)
        by_columns = Table.from_columns(
            "t",
            by_rows.schema,
            {
                "k": np.asarray([r[0] for r in rows], dtype=np.int64),
                "g": np.asarray([r[1] for r in rows], dtype=np.int64),
                "v": np.asarray([r[2] for r in rows], dtype=np.float64),
            },
        )
        assert list(by_rows.rows()) == list(by_columns.rows())
        assert by_rows.byte_size == by_columns.byte_size

    def test_from_columns_validates(self):
        schema = Schema.of(k="int", v="float")
        with pytest.raises(SchemaError):
            Table.from_columns("t", schema, {"k": [1.5], "v": [1.0]})
        with pytest.raises(SchemaError):
            Table.from_columns("t", schema, {"k": [1]})
        with pytest.raises(SchemaError):
            Table.from_columns("t", schema, {"k": [1, 2], "v": [1.0]})
        with pytest.raises(SchemaError):
            Table.from_columns(
                "t", Schema.of(s="str"), {"s": np.asarray([1, 2])}
            )

    @given(rows=rows_strategy)
    @settings(max_examples=60)
    def test_column_cache_invalidated_by_insert(self, rows):
        table = make_table(rows)
        before = table.column_array("k").tolist()
        table.insert((99, 0, 1.0))
        after = table.column_array("k").tolist()
        assert after == before + [99]

    def test_batch_rows_are_python_types(self):
        table = Table.from_columns(
            "t",
            Schema.of(k="int", v="float", s="str"),
            {"k": np.arange(3), "v": np.linspace(0, 1, 3), "s": ["a", "b", "c"]},
        )
        for row in table.as_batch().to_rows():
            assert type(row[0]) is int
            assert type(row[1]) is float
            assert type(row[2]) is str

    def test_batch_length_mismatch_rejected(self):
        schema = Schema.of(k="int", v="float")
        with pytest.raises(SchemaError):
            ColumnBatch(schema, [np.arange(3), np.arange(2.0)])


class TestFriendsOfFriendsEquivalence:
    positions_strategy = st.lists(
        st.tuples(
            st.floats(0.0, 50.0, allow_nan=False),
            st.floats(0.0, 50.0, allow_nan=False),
            st.floats(0.0, 50.0, allow_nan=False),
        ),
        max_size=60,
    )

    @staticmethod
    def partition(labels):
        groups: dict = {}
        for index, label in enumerate(labels.tolist()):
            groups.setdefault(label, set()).add(index)
        unclustered = frozenset(groups.pop(-1, set()))
        return set(map(frozenset, groups.values())), unclustered

    @given(
        points=positions_strategy,
        link=st.floats(0.5, 5.0, allow_nan=False),
        min_members=st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_same_partition_as_reference(self, points, link, min_members):
        positions = np.asarray(points, dtype=float).reshape(-1, 3)
        vectorized = friends_of_friends(positions, link, min_members)
        reference = friends_of_friends_reference(positions, link, min_members)
        assert self.partition(vectorized) == self.partition(reference)

    @given(points=positions_strategy)
    @settings(max_examples=40, deadline=None)
    def test_labels_ordered_by_descending_size(self, points):
        positions = np.asarray(points, dtype=float).reshape(-1, 3)
        labels = friends_of_friends(positions, 2.0, min_members=2)
        clustered = labels[labels >= 0]
        if clustered.size:
            sizes = np.bincount(clustered)
            assert all(a >= b for a, b in zip(sizes, sizes[1:]))
