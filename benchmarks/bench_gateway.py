"""Gateway dispatch overhead vs driving the FleetEngine directly.

The gateway facade (:class:`repro.gateway.PricingService`) must not tax
the fleet's batched hot path: a batched ``dispatch`` regroups one
``SubmitBids`` envelope per user back into the same columnar
:class:`~repro.fleet.engine.FleetBatch` blocks the direct path ingests,
so the only added work is envelope handling. This benchmark races the
two on the identical drawn population:

* **direct** — pre-built columnar batches ingested into a bare
  ``FleetEngine``, run to the end of the period;
* **gateway** — one ``SubmitBids`` envelope per user through
  ``PricingService.dispatch``, the same period run through the
  facade.

Outcomes are asserted bit-identical — payments, grants, implementation
slots, per-game revenue, the billing ledger and the event log — before
any timing is trusted (inside ``measure_gateway_point``). The acceptance
bar is **< 15% dispatch overhead at 200 games / 50,000 users**; run as a
script for the full table:

    PYTHONPATH=src python benchmarks/bench_gateway.py
"""

from __future__ import annotations

import harness
from repro.experiments import measure_gateway_point

#: (games, users, slots) rows of the table; the last row is the bar.
#: Smoke mode shrinks them so CI proves the benchmark code runs.
SCALES = harness.scale(
    (
        (50, 12_500, 1000),
        (200, 50_000, 6000),
    ),
    ((5, 300, 50),),
)

#: Maximum tolerated gateway/direct wall-clock overhead at the bar scale.
OVERHEAD_CEILING = 0.15
SEED = 2012


def test_gateway_overhead_at_50k_users(emit):
    """Acceptance bar: < 15% dispatch overhead at 200 games / 50k users."""
    rows = []
    for games, users, slots in SCALES:
        # Best-of-5: the measured gap is tens of milliseconds, so a
        # single scheduler hiccup on a shared box can swamp it at
        # best-of-3.
        direct_s, gateway_s = measure_gateway_point(
            games=games, users=users, slots=slots, repeats=5, seed=SEED
        )
        rows.append((games, users, slots, direct_s, gateway_s))
    table = "\n".join(
        [
            "== gateway dispatch vs direct FleetEngine "
            "(bit-identical outcomes, ledger and events asserted) ==",
            f"{'games':>6} {'users':>7} {'slots':>6} "
            f"{'direct s':>9} {'gateway s':>10} {'overhead':>9}",
        ]
        + [
            f"{g:>6} {u:>7} {z:>6} {d:>9.3f} {w:>10.3f} {w / d - 1.0:>8.1%}"
            for g, u, z, d, w in rows
        ]
    )
    emit("gateway_dispatch", table)
    games, users, _, direct_s, gateway_s = rows[-1]
    overhead = gateway_s / direct_s - 1.0
    harness.record(
        "gateway_dispatch",
        # The recorded headline keeps the harness convention of "bigger is
        # better": direct/gateway, i.e. 1.0 means a free abstraction.
        speedup=direct_s / gateway_s,
        n=users,
        seed=SEED,
        floor=1.0 - OVERHEAD_CEILING,
        extra={
            "games": games,
            "overhead": round(overhead, 4),
            "scales": [list(r[:3]) for r in rows],
        },
    )
    if harness.enforce_floors():
        assert overhead < OVERHEAD_CEILING, (
            f"gateway adds {overhead:.1%} over the direct fleet at "
            f"{games} games / {users} users (ceiling {OVERHEAD_CEILING:.0%})"
        )


if __name__ == "__main__":

    class _Stdout:
        def __call__(self, name, text):
            print(text)

    test_gateway_overhead_at_50k_users(_Stdout())
