"""Batch-vs-incremental slot throughput of the online mechanism engine.

Measures the cost of advancing one AddOn slot two ways on the same game:

* **full** — the seed strategy: rebuild the complete residual-bid profile
  (``n`` users, cumulative users forced to infinity) and re-run the
  Shapley Value Mechanism from scratch;
* **incremental** — :meth:`repro.core.online.AddOnState.step_changed` with
  only the ``m`` bids that actually changed since the previous slot.

Both paths are driven through the identical update sequence and checked
slot-by-slot for identical serviced sets, prices, and payments before any
timing is trusted. The acceptance bar is a >= 5x speedup at
n >= 10,000 users; run as a script for the full table:

    PYTHONPATH=src python benchmarks/bench_incremental.py
"""

from __future__ import annotations

import math
import time

import numpy as np

import harness
from repro import run_shapley
from repro.core.online import AddOnState

SLOTS = 40

#: (users, changed bids per slot) rows of the table; smoke mode shrinks
#: them so CI can prove the benchmark code runs in seconds.
SCALES = harness.scale(
    ((1_000, 50), (10_000, 100), (50_000, 200)),
    ((200, 10), (400, 20)),
)
SPEEDUP_FLOOR = 5.0
BAR_USERS = SCALES[-2][0] if len(SCALES) > 1 else SCALES[0][0]
SEED = 7


def make_updates(n_users: int, changes_per_slot: int, seed: int = 7):
    """Per-slot sparse bid updates: everyone arrives, then m churn per slot.

    Bids are bimodal (most users clear the eventual share, a band does
    not), so the serviced set is a strict, moving subset — the worst case
    for the engine, which must keep re-deciding the eviction boundary.
    """
    rng = np.random.default_rng(seed)

    def draw(size):
        high = rng.uniform(8.0, 20.0, size=size)
        low = rng.uniform(0.0, 3.0, size=size)
        return np.where(rng.random(size) < 0.7, high, low)

    updates = [dict(zip(range(n_users), draw(n_users)))]
    for _ in range(SLOTS - 1):
        users = rng.choice(n_users, size=changes_per_slot, replace=False)
        updates.append(dict(zip(users.tolist(), draw(changes_per_slot))))
    return updates


def run_full(cost: float, updates) -> list:
    """Per-slot full recomputation (the seed online strategy)."""
    profile: dict = {}
    cumulative: frozenset = frozenset()
    trace = []
    for changed in updates:
        profile.update(changed)
        bids = dict(profile)
        for user in cumulative:
            bids[user] = math.inf
        result = run_shapley(cost, bids)
        if result.serviced:
            cumulative = result.serviced
        trace.append((cumulative, result.price, result.payment(0)))
    return trace


def run_incremental(cost: float, updates) -> list:
    """The same slots through the persistent sorted-bid engine."""
    state = AddOnState(cost)
    trace = []
    for t, changed in enumerate(updates, start=1):
        delta = state.step_changed(t, changed)
        trace.append((state.cumulative, delta.price, state.exit_price(0)))
    return trace


def compare(n_users: int, changes_per_slot: int):
    """Verify equivalence, then time both paths over the same updates.

    The timed loops are the lean production shapes: the full path must
    rebuild and solve the whole profile to learn anything, while the
    incremental path consumes the per-slot delta (consumers like the
    cloudsim loop never materialize the cumulative set mid-game).
    """
    cost = 5.0 * n_users  # share ~5 once most of the high band is in
    updates = make_updates(n_users, changes_per_slot)

    full_trace = run_full(cost, updates)
    incremental_trace = run_incremental(cost, updates)
    for (s_full, p_full, pay_full), (s_inc, p_inc, pay_inc) in zip(
        full_trace, incremental_trace, strict=True
    ):
        assert s_full == s_inc, "serviced sets diverged"
        assert p_full == p_inc, "prices diverged"
        assert pay_full == pay_inc, "payments diverged"

    # Timed phase: steady-state churn only. Slot 1 is the arrival flood —
    # a one-off O(n) intake both paths pay identically — so it runs before
    # the clock starts; what the mechanism pays *per slot* for the rest of
    # the period is the quantity being compared.
    setup, churn = updates[0], updates[1:]

    profile = dict(setup)
    result = run_shapley(cost, profile)
    cumulative = result.serviced
    start = time.perf_counter()
    for changed in churn:
        profile.update(changed)
        bids = dict(profile)
        for user in cumulative:
            bids[user] = math.inf
        result = run_shapley(cost, bids)
        if result.serviced:
            cumulative = result.serviced
    full_s = time.perf_counter() - start

    state = AddOnState(cost)
    state.step_changed(1, setup)
    start = time.perf_counter()
    for t, changed in enumerate(churn, start=2):
        state.step_changed(t, changed)
    incremental_s = time.perf_counter() - start

    return full_s, incremental_s, full_s / incremental_s


def test_incremental_speedup_at_10k(emit):
    """Acceptance bar: >= 5x over full recomputation at n = 10,000."""
    rows = []
    for n_users, m in SCALES:
        full_s, incremental_s, speedup = compare(n_users, m)
        rows.append((n_users, m, full_s, incremental_s, speedup))
    table = "\n".join(
        [
            "== incremental engine: slot throughput, "
            f"{SLOTS} slots, m changed bids/slot ==",
            f"{'users':>8} {'m':>5} {'full s':>10} {'incr s':>10} {'speedup':>9}",
        ]
        + [
            f"{n:>8} {m:>5} {f:>10.4f} {i:>10.4f} {f / i:>8.1f}x"
            for n, m, f, i, _ in rows
        ]
    )
    emit("incremental_engine", table)
    at_bar = next(s for n, _, _, _, s in rows if n == BAR_USERS)
    harness.record(
        "incremental_engine",
        speedup=at_bar,
        n=BAR_USERS,
        seed=SEED,
        floor=SPEEDUP_FLOOR,
        extra={"slots": SLOTS, "scales": [list(r[:2]) for r in rows]},
    )
    if harness.enforce_floors():
        assert at_bar >= SPEEDUP_FLOOR, (
            f"incremental path only {at_bar:.1f}x faster"
        )


if __name__ == "__main__":
    class _Stdout:
        def __call__(self, name, text):
            print(text)

    test_incremental_speedup_at_10k(_Stdout())
