"""CI gate: fail when the bench trajectory regresses.

Compares every fresh result under ``benchmarks/results/*.json`` against
the committed trajectory baselines (``BENCH_PR10.json`` first, falling
back to ``BENCH_PR9.json``/``BENCH_PR6.json``/``BENCH_PR4.json``/
``BENCH_PR3.json`` for
benchmarks that predate it) and exits
non-zero when a benchmark's headline speedup fell more than the allowed
tolerance (default 20%) below its baseline.

A comparison is only *strict* when it is meaningful:

* the fresh run and its baseline must agree on the headline scale ``n``
  (a 2,000-particle smoke run says nothing about a 40,000-particle
  workstation baseline — smoke baselines live under ``<name>@smoke``
  trajectory keys, see ``harness.record``);
* wall-clock speedups measured in smoke mode are never strictly gated
  (shared CI runners make them noise), but *metered* ratios — simulated
  cost units, machine-independent and deterministic — are gated even in
  smoke mode (``SCALE_INDEPENDENT`` lists them).

Everything else still passes a sanity gate: the entry must parse, carry
a positive speedup, and clear its own recorded floor on full runs. A
fresh full-run result with no baseline at all fails — every benchmark
must enter the trajectory in the PR that adds it.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py [--tolerance 0.2]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

import harness

#: Benchmarks whose headline ratio is simulated (metered) rather than
#: wall-clock: deterministic, machine-independent, strictly gated even
#: on smoke runs.
SCALE_INDEPENDENT = ("advisor_loop",)


def _committed_text(path: Path) -> str | None:
    """The file as committed at HEAD, or None when git cannot provide it."""
    try:
        proc = subprocess.run(
            ["git", "show", f"HEAD:{path.resolve().relative_to(harness.ROOT)}"],
            cwd=harness.ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError, ValueError):
        return None
    return proc.stdout if proc.returncode == 0 else None


def load_baselines(paths, committed: bool = False) -> dict:
    """Merged ``{key: entry}`` from the trajectory files.

    Earlier paths win: the newest committed trajectory is authoritative,
    older ones only cover benchmarks it does not record yet. With
    ``committed=True`` each path is read as of ``HEAD`` (falling back to
    the working-tree file outside a git checkout) — ``harness.record``
    rewrites the live trajectory *during* a benchmark run, and comparing
    fresh results against their own just-written numbers would make the
    gate a no-op.
    """
    merged: dict = {}
    for path in paths:
        text = _committed_text(Path(path)) if committed else None
        if text is None:
            if not Path(path).exists():
                continue
            text = Path(path).read_text()
        for key, entry in json.loads(text).get("results", {}).items():
            merged.setdefault(key, entry)
    return merged


def check_entry(
    name: str, fresh: dict, baselines: dict, tolerance: float
) -> tuple[bool, str]:
    """One benchmark's verdict: ``(ok, detail)``."""
    speedup = fresh.get("speedup")
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        return False, f"fresh result has no positive speedup ({speedup!r})"
    smoke = bool(fresh.get("smoke"))
    baseline = baselines.get(f"{name}@smoke") if smoke else baselines.get(name)
    if baseline is None and smoke:
        baseline = baselines.get(name)  # sanity reference only
    if baseline is None:
        if smoke:
            return True, f"sanity only (no baseline yet): speedup {speedup}"
        return False, "no committed baseline — record one in BENCH_PR10.json"

    strict = (
        fresh.get("n") == baseline.get("n")
        and smoke == bool(baseline.get("smoke"))
        and (not smoke or name in SCALE_INDEPENDENT)
    )
    if not strict:
        floor = fresh.get("floor")
        if floor is not None and speedup < floor and not smoke:
            return False, f"speedup {speedup} under its own floor {floor}"
        return True, (
            f"sanity only (n={fresh.get('n')}/smoke={smoke} vs baseline "
            f"n={baseline.get('n')}/smoke={bool(baseline.get('smoke'))}): "
            f"speedup {speedup}"
        )
    base_speedup = baseline.get("speedup", 0.0)
    allowed = base_speedup * (1.0 - tolerance)
    if speedup < allowed:
        return False, (
            f"speedup {speedup} regressed >{tolerance:.0%} below baseline "
            f"{base_speedup} (allowed >= {allowed:.2f})"
        )
    return True, f"speedup {speedup} vs baseline {base_speedup} (ok)"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results", type=Path, default=harness.RESULTS_DIR,
        help="directory of fresh per-benchmark JSON results",
    )
    parser.add_argument(
        "--baselines", type=Path, nargs="+", default=None,
        help="trajectory files, newest first (default: the committed "
        "HEAD versions of BENCH_PR10.json, BENCH_PR9.json, BENCH_PR6.json, BENCH_PR4.json and "
        "BENCH_PR3.json)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed fractional speedup drop before failing (default 0.2)",
    )
    args = parser.parse_args(argv)

    fresh_paths = sorted(Path(args.results).glob("*.json"))
    if not fresh_paths:
        print(f"no fresh results under {args.results} — run the benchmarks first")
        return 2
    if args.baselines is None:
        # Default: the committed trajectories — the working-tree copy was
        # just rewritten by the benchmark run being judged.
        baselines = load_baselines(harness.BASELINE_PATHS, committed=True)
    else:
        baselines = load_baselines(args.baselines)

    failures = 0
    for path in fresh_paths:
        try:
            fresh = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"FAIL {path.name}: unparseable ({exc})")
            failures += 1
            continue
        name = fresh.get("benchmark", path.stem)
        ok, detail = check_entry(name, fresh, baselines, args.tolerance)
        print(f"{'ok  ' if ok else 'FAIL'} {name}: {detail}")
        failures += 0 if ok else 1
    if failures:
        print(f"{failures} benchmark(s) regressed or failed the gate")
        return 1
    print(f"{len(fresh_paths)} benchmark(s) pass the regression gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
