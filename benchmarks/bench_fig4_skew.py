"""FIG4 — Figure 4: arrival-time skew (Section 7.5).

Six single-slot users, one optimization, arrivals uniform / early / late.
All curves are normalized by Early-AddOn's utility. Claims asserted:
AddOn improves with skew (Early-AddOn dominates, Uniform-AddOn is worst at
high cost) while Regret worsens with skew (Early-Regret sinks below
Uniform-Regret and goes negative).
"""

from __future__ import annotations

from conftest import trials

from repro.experiments import Fig4Config, format_result, run_fig4_skew


def test_fig4_arrival_skew(benchmark, emit):
    config = Fig4Config(trials=trials(400))
    result = benchmark.pedantic(
        lambda: run_fig4_skew(config), rounds=1, iterations=1
    )
    early_addon = result.get("Early-AddOn").y
    uniform_addon = result.get("Uniform-AddOn").y
    late_addon = result.get("Late-AddOn").y
    early_regret = result.get("Early-Regret").y
    uniform_regret = result.get("Uniform-Regret").y

    # The reference series normalizes to 1 everywhere it is well-defined.
    assert all(abs(v - 1.0) < 1e-9 for v in early_addon if v != 0.0)
    # AddOn: skewed arrivals (early or late) beat uniform at high costs.
    assert uniform_addon[-1] < 1.0
    assert uniform_addon[-1] < late_addon[-1]
    ratio = 1.0 / max(uniform_addon[-1], 1e-9)
    print(f"\nFIG4 Early-AddOn vs Uniform-AddOn at max cost: {ratio:.1f}x (paper 6.7x)")
    # Regret: early skew is the worst setting and ends negative.
    assert early_regret[-1] < uniform_regret[-1]
    assert early_regret[-1] < 0
    emit("fig4_arrival_skew", format_result(result, max_rows=20))
