"""The closed optimization loop, measured on the astronomy workload.

Runs :func:`repro.experiments.advisor_loop.run_advisor_loop` at 40,000
particles: the astronomers' workloads execute unoptimized, the advisor
mines the workload log, enumerates candidate views and indexes, prices
them through the fleet games, and adopts whatever the tenants fund; the
workloads then re-execute against the adopted physical design.

The acceptance bar is a >= 3x cut in *metered* workload cost (simulated
cost units, not wall-clock), which is scale-independent and therefore
enforced even in smoke mode — the ratio is a property of the plans the
cost-based planner serves, not of the machine. Results are recorded via
``harness.record`` into ``BENCH_PR9.json``. Run as a script:

    PYTHONPATH=src python benchmarks/bench_advisor.py
"""

from __future__ import annotations

import time

import harness
from repro.experiments.advisor_loop import AdvisorLoopConfig, run_advisor_loop

PARTICLES = harness.scale(40_000, 2_000)
SNAPSHOTS = 4
SEED = 2012
COST_FLOOR = 3.0


def test_advisor_cuts_metered_cost(emit):
    """Acceptance bar: >= 3x metered-cost cut at 40k particles."""
    started = time.perf_counter()
    loop = run_advisor_loop(
        AdvisorLoopConfig(
            particles=PARTICLES,
            halos=30,
            snapshots=SNAPSHOTS,
            min_halo_members=10,
            seed=SEED,
        )
    )
    elapsed = time.perf_counter() - started
    outcome = loop.outcome

    lines = [
        f"== advisor loop: {PARTICLES} particles x {SNAPSHOTS} snapshots, "
        f"{len(outcome.candidates)} candidates, {len(outcome.adopted)} adopted "
        f"({elapsed:.1f}s wall) ==",
        f"{'tenant':<14} {'baseline':>14} {'advised':>14} {'ratio':>7}",
    ]
    baseline_series = loop.result.get("baseline [units]")
    advised_series = loop.result.get("advised [units]")
    for i, x in enumerate(baseline_series.x):
        b, a = baseline_series.y[i], advised_series.y[i]
        lines.append(f"astro-{x:<8} {b:>14.0f} {a:>14.0f} {b / a:>6.1f}x")
    lines.append(
        f"{'workload':<14} {loop.baseline_units:>14.0f} "
        f"{loop.advised_units:>14.0f} {loop.cost_ratio:>6.1f}x"
    )
    lines.append(f"adopted: {', '.join(outcome.adopted)}")
    emit("advisor_loop", "\n".join(lines))

    harness.record(
        "advisor_loop",
        speedup=loop.cost_ratio,
        n=PARTICLES,
        seed=SEED,
        floor=COST_FLOOR,
        extra={
            "candidates": len(outcome.candidates),
            "adopted": list(outcome.adopted),
            "baseline_units": round(loop.baseline_units, 1),
            "advised_units": round(loop.advised_units, 1),
            "metric": "metered cost units (scale-independent)",
        },
    )

    # Metered units are deterministic simulated cost, not machine timing,
    # so this floor holds at smoke scale too and is always enforced.
    assert outcome.adopted, "the games funded nothing — no design adopted"
    assert loop.cost_ratio >= COST_FLOOR, (
        f"advisor only cut metered cost {loop.cost_ratio:.2f}x at "
        f"{PARTICLES} particles (floor {COST_FLOOR}x)"
    )


if __name__ == "__main__":

    class _Stdout:
        def __call__(self, name, text):
            print(text)

    test_advisor_cuts_metered_cost(_Stdout())
