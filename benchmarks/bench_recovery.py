"""Durability tax and recovery speed of the write-ahead-logged gateway.

Three measurements, one harness:

* **Steady-state overhead (gated)** — the same running-period stream is
  driven through a plain :class:`repro.gateway.PricingService` and one
  with :meth:`attach_wal` active: every round is one batched ``dispatch``
  call mixing a multi-slot ``AdvanceSlots`` tick, an analyst report
  burst of relational ``RunQuery`` envelopes against a six-figure-row
  snapshot table, a ``LedgerQuery`` and a late revisable ``SubmitBids``.
  The snapshot table is warmed (one untimed scan seals its columnar
  shadow) before either side is measured. Batched ``dispatch``
  is the WAL's group-commit boundary — one atomic record, one fsync per
  round — so the durability tax is one serialization pass plus one
  fsync against milliseconds of pricing and query work. The acceptance
  bar is **< 10% overhead with the WAL on** at the largest scale.
  Before any timing is trusted, the two sides' durable fingerprints
  (catalog, workload log, ledger, events, slot) are asserted
  bit-identical and the WAL directory is recovered and checked against
  the live service.

* **Bulk-intake burst (reported, not gated)** — the one-off period-open
  one batched ``dispatch`` of one envelope per user. The engine ingests 50k
  users in tens of milliseconds, so the WAL's single giant record
  (serialize + fsync) dominates; the table reports that burst tax
  honestly instead of hiding it inside the steady-state number.

* **Recovery wall-clock vs WAL length** — a service is killed after N
  singly-dispatched (therefore singly-logged) envelopes and
  :meth:`PricingService.recover` is timed rebuilding it from the base
  checkpoint plus an N-record replay; the recovered fingerprint must
  match the pre-kill service exactly. The rows land machine-readable in
  the trajectory entry (``extra["recovery"]``).

Run as a script for the full table:

    PYTHONPATH=src python benchmarks/bench_recovery.py
"""

from __future__ import annotations

import gc
import tempfile
import time
from pathlib import Path

import harness
from repro.cloudsim.catalog import OptimizationCatalog
from repro.db.schema import Schema
from repro.db.table import Table
from repro.gateway import codec
from repro.gateway.envelopes import (
    AdvanceSlots,
    ErrorReply,
    LedgerQuery,
    RunQuery,
    SubmitBids,
)
from repro.gateway.service import PricingService
from repro.workloads.fleet import fleet_arrival_trace, fleet_game_costs

#: (games, users, slots, rounds, queries, table_rows) rows of the
#: overhead table; the last row is the bar. Smoke mode shrinks them so
#: CI proves the benchmark code runs.
SCALES = harness.scale(
    (
        (50, 12_500, 1000, 10, 6, 120_000),
        (200, 50_000, 6000, 15, 10, 240_000),
    ),
    ((5, 300, 50, 5, 2, 2_000),),
)

#: WAL lengths (records) for the recovery-time sweep.
WAL_LENGTHS = harness.scale((100, 400, 1600), (10, 30))

#: Maximum tolerated WAL-on/WAL-off wall-clock overhead at the bar scale.
OVERHEAD_CEILING = 0.10
SEED = 2012
SHARDS = 8
MAX_DURATION = 4
MEAN_COST = 30.0
HALO_GROUPS = 400


def _intake(trace) -> list[SubmitBids]:
    return [
        SubmitBids(
            tenant=arrival.user,
            bids=(
                (
                    arrival.optimization,
                    arrival.bid.start,
                    arrival.bid.schedule.values,
                ),
            ),
        )
        for arrival in trace
    ]


def _snapshot_table(rows: int) -> Table:
    table = Table("snap_01", Schema.of(pid="int", halo="int"))
    for i in range(rows):
        table.insert((i, i % HALO_GROUPS))
    return table


def _steady_rounds(
    games: int, slots: int, rounds: int, queries: int, trace
) -> list[list]:
    """The post-intake period as batched-``dispatch`` group-commit rounds.

    Each round is one multi-slot tick, an analyst report burst of
    ``queries`` membership pulls, one tenant statement, and (while a
    future slot exists) one late revisable bid.
    """
    chunk = slots // rounds
    steps = []
    for i in range(rounds):
        step = [
            AdvanceSlots(slots=chunk),
            *(
                RunQuery(
                    tenant="analyst",
                    query="members",
                    table="snap_01",
                    halo=(i * 7 + q * 13 + 1) % HALO_GROUPS,
                )
                for q in range(queries)
            ),
            LedgerQuery(tenant=trace[i % len(trace)].user),
        ]
        start = (i + 1) * chunk + 1
        if start <= slots:  # the final tick has no future slot to bid on
            step.append(
                SubmitBids(
                    tenant=f"late-{i}",
                    bids=((f"game-{i % games}", start, (5.0,)),),
                    revisable=True,
                )
            )
        steps.append(step)
    return steps


def _fingerprint(service: PricingService) -> dict:
    """Every durable surface of a configured service, in encoded form."""
    return {
        "db": codec.encode(service.db),
        "log": codec.encode(service.log),
        "db_epoch": service.db.epoch,
        "slot": service.fleet.slot,
        "ledger": codec.encode(service.fleet.ledger),
        "events": codec.encode(service.fleet.events),
    }


def measure_steady_point(
    games: int,
    users: int,
    slots: int,
    rounds: int,
    queries: int,
    table_rows: int,
    repeats: int = 5,
) -> tuple[float, float, float, float]:
    """Best-of-``repeats`` seconds for one scale.

    Returns ``(plain_s, wal_s, burst_plain_s, burst_wal_s)``: the timed
    steady-state stream and the one-off bulk-intake burst, each on both
    sides. Parity (identical fingerprints, recoverable WAL) is asserted
    on the first repeat before any timing is trusted.
    """
    costs = fleet_game_costs(SEED, games, MEAN_COST)
    trace = fleet_arrival_trace(SEED + 1, users, games, slots, MAX_DURATION)
    intake = _intake(trace)
    rounds_steps = _steady_rounds(games, slots, rounds, queries, trace)
    catalog = OptimizationCatalog.from_costs(costs)

    def _build(wal_dir: Path | None) -> PricingService:
        service = PricingService(catalog, horizon=slots, shards=SHARDS)
        service.db.create_table(_snapshot_table(table_rows))
        # Warm the snapshot table (first scan seals the columnar shadow,
        # a one-time cost that would otherwise swamp round timings) —
        # before the WAL attaches, so neither side logs the warmup.
        reply = service.dispatch(
            RunQuery(tenant="analyst", query="members", table="snap_01", halo=0)
        )
        if isinstance(reply, ErrorReply):
            raise AssertionError(f"warmup query failed: {reply.message}")
        if wal_dir is not None:
            service.attach_wal(wal_dir)  # base checkpoint, untimed
        return service

    def _run(service) -> tuple[float, float]:
        # Same GC regime for both sides: the resident request population
        # makes generational passes near-full scans, and which side eats
        # one is allocation-clock luck.
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            acks = service.dispatch(intake)
            if acks.failed is not None:
                raise AssertionError(f"bulk intake failed: {acks.failed}")
            burst = time.perf_counter() - started
            started = time.perf_counter()
            for step in rounds_steps:
                for reply in service.dispatch(step):
                    if isinstance(reply, ErrorReply):
                        raise AssertionError(
                            f"steady-state dispatch failed: [{reply.code}] "
                            f"{reply.message}"
                        )
            return burst, time.perf_counter() - started
        finally:
            gc.enable()

    # Parity first: identical fingerprints on both sides, and the WAL
    # actually recovers to the state of the live service it logged.
    with tempfile.TemporaryDirectory() as tmp:
        plain = _build(None)
        burst_plain, plain_s = _run(plain)
        durable = _build(Path(tmp))
        burst_wal, wal_s = _run(durable)
        if _fingerprint(plain) != _fingerprint(durable):
            raise AssertionError("WAL-attached run diverges from the plain run")
        live = _fingerprint(durable)
        durable.close()
        recovered = PricingService.recover(Path(tmp))
        if _fingerprint(recovered) != live:
            raise AssertionError("recovered state diverges from the live run")
        recovered.close()
        del plain, durable, recovered, live
    gc.collect()

    for _ in range(repeats - 1):
        b, s = _run(_build(None))
        burst_plain, plain_s = min(burst_plain, b), min(plain_s, s)
        with tempfile.TemporaryDirectory() as tmp:
            b, s = _run(_build(Path(tmp)))
        burst_wal, wal_s = min(burst_wal, b), min(wal_s, s)
    return plain_s, wal_s, burst_plain, burst_wal


def measure_recovery_point(records: int) -> float:
    """Seconds to recover a service whose WAL holds ``records`` records."""
    games, slots = 16, 64
    costs = fleet_game_costs(SEED, games, MEAN_COST)
    trace = fleet_arrival_trace(SEED + 1, records, games, slots, MAX_DURATION)
    catalog = OptimizationCatalog.from_costs(costs)
    with tempfile.TemporaryDirectory() as tmp:
        service = PricingService(catalog, horizon=slots, shards=2)
        service.attach_wal(Path(tmp))
        for request in _intake(trace):
            reply = service.dispatch(request)
            if isinstance(reply, ErrorReply):
                raise AssertionError(f"dispatch failed: {reply.message}")
        expected = _fingerprint(service)
        service.close()

        started = time.perf_counter()
        recovered = PricingService.recover(Path(tmp))
        elapsed = time.perf_counter() - started
        if _fingerprint(recovered) != expected:
            raise AssertionError(
                f"recovery of a {records}-record WAL diverges from the "
                "pre-kill service"
            )
        recovered.close()
    return elapsed


def test_wal_overhead_and_recovery_time(emit):
    """Acceptance bar: < 10% WAL overhead at 200 games / 50k users."""
    rows = []
    for games, users, slots, rounds, queries, table_rows in SCALES:
        plain_s, wal_s, burst_plain, burst_wal = measure_steady_point(
            games, users, slots, rounds, queries, table_rows
        )
        rows.append(
            (games, users, slots, plain_s, wal_s, burst_plain, burst_wal)
        )
    recovery_rows = [
        (records, measure_recovery_point(records)) for records in WAL_LENGTHS
    ]
    table = "\n".join(
        [
            "== steady-state stream, WAL on vs off "
            "(bit-identical fingerprints and recovery asserted) ==",
            f"{'games':>6} {'users':>7} {'slots':>6} "
            f"{'plain s':>9} {'wal s':>9} {'overhead':>9} {'burst tax':>10}",
        ]
        + [
            f"{g:>6} {u:>7} {z:>6} {p:>9.3f} {w:>9.3f} {w / p - 1.0:>8.1%} "
            f"{bw / bp - 1.0:>9.1%}"
            for g, u, z, p, w, bp, bw in rows
        ]
        + [
            "",
            "== recovery wall-clock vs WAL length (checkpoint + replay) ==",
            f"{'records':>8} {'recover s':>10} {'records/s':>10}",
        ]
        + [
            f"{n:>8} {s:>10.3f} {n / s:>10.0f}"
            for n, s in recovery_rows
        ]
    )
    emit("recovery", table)
    games, users, _, plain_s, wal_s, burst_plain, burst_wal = rows[-1]
    overhead = wal_s / plain_s - 1.0
    harness.record(
        "recovery",
        # Harness convention is "bigger is better": plain/wal, i.e. 1.0
        # means durability is free.
        speedup=plain_s / wal_s,
        n=users,
        seed=SEED,
        floor=1.0 - OVERHEAD_CEILING,
        extra={
            "games": games,
            "overhead": round(overhead, 4),
            "burst_overhead": round(burst_wal / burst_plain - 1.0, 4),
            "scales": [list(r[:3]) for r in rows],
            "recovery": [[n, round(s, 4)] for n, s in recovery_rows],
        },
    )
    if harness.enforce_floors():
        assert overhead < OVERHEAD_CEILING, (
            f"the WAL adds {overhead:.1%} over the plain gateway at "
            f"{games} games / {users} users (ceiling {OVERHEAD_CEILING:.0%})"
        )


if __name__ == "__main__":

    class _Stdout:
        def __call__(self, name, text):
            print(text)

    test_wal_overhead_and_recovery_time(_Stdout())
