"""ABL3 — mechanism runtime scaling (pytest-benchmark microbenchmarks).

Times the four mechanisms at growing user / slot / optimization counts.
There is no paper counterpart; these keep the implementations honest
(the inner Shapley loop is O(m^2) worst case, AddOn O(z m^2), SubstOff
O(phases * n * m^2)) and catch accidental quadratic blowups elsewhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AdditiveBid,
    SubstitutableBid,
    run_addon,
    run_shapley,
    run_substoff,
    run_subston,
)


def _scalar_bids(users: int, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    return {k: float(v) for k, v in enumerate(rng.uniform(0.0, 50.0, users))}


@pytest.mark.parametrize("users", [10, 100, 1000])
def test_shapley_scaling(benchmark, users):
    bids = _scalar_bids(users)
    result = benchmark(run_shapley, 25.0 * users / 4, bids)
    assert result.rounds >= 1


@pytest.mark.parametrize("users,slots", [(10, 12), (50, 12), (50, 60)])
def test_addon_scaling(benchmark, users, slots):
    rng = np.random.default_rng(1)
    bids = {}
    for k in range(users):
        start = int(rng.integers(1, slots + 1))
        duration = int(rng.integers(1, slots - start + 2))
        values = rng.uniform(0.0, 10.0, duration).tolist()
        bids[k] = AdditiveBid.over(start, values)
    outcome = benchmark(run_addon, 20.0, bids, slots)
    assert outcome.horizon == slots


@pytest.mark.parametrize("users,opts", [(10, 4), (50, 12), (100, 24)])
def test_substoff_scaling(benchmark, users, opts):
    rng = np.random.default_rng(2)
    costs = {j: float(c) for j, c in enumerate(rng.uniform(1.0, 30.0, opts))}
    bids = {}
    for k in range(users):
        chosen = rng.choice(opts, size=3, replace=False)
        value = float(rng.uniform(0.0, 20.0))
        bids[k] = {int(j): value for j in chosen}
    outcome = benchmark(run_substoff, costs, bids)
    assert outcome.total_payment >= outcome.total_cost - 1e-6


@pytest.mark.parametrize("users,opts,slots", [(12, 6, 12), (24, 12, 12)])
def test_subston_scaling(benchmark, users, opts, slots):
    rng = np.random.default_rng(3)
    costs = {j: float(c) for j, c in enumerate(rng.uniform(1.0, 30.0, opts))}
    bids = {}
    for k in range(users):
        chosen = frozenset(int(j) for j in rng.choice(opts, size=3, replace=False))
        slot = int(rng.integers(1, slots + 1))
        bids[k] = SubstitutableBid.single_slot(slot, float(rng.uniform(0.0, 20.0)), chosen)
    outcome = benchmark(run_subston, costs, bids, slots)
    assert outcome.horizon == slots
