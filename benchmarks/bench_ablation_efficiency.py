"""ABL4 — the impossibility triangle, measured (Section 3).

No mechanism is truthful, cost-recovering and efficient at once. This
ablation runs random offline additive games through three corners:

* the **efficient optimum** (value-maximizing, unreachable benchmark);
* **VCG** — efficient and truthful, but budget-deficient;
* the **Shapley mechanism** (AddOff) — truthful and cost-recovering, with
  a measured welfare loss (Moulin/Shenker: the smallest possible one).

Reported per corner: mean welfare (relative to optimum) and mean cost
recovery (revenue/cost over implemented optimizations).
"""

from __future__ import annotations

import numpy as np
from conftest import trials

from repro import run_addoff
from repro.baseline.vcg import run_vcg_additive
from repro.core import accounting
from repro.core.efficiency import efficient_additive
from repro.utils.rng import spawn_rngs


def test_abl4_efficiency_frontier(benchmark, emit):
    n = trials(3000)

    def run():
        rows = []
        for rng in spawn_rngs(7, n):
            users = int(rng.integers(3, 10))
            cost = float(rng.uniform(5.0, 100.0))
            bids = {
                "opt": {k: float(v) for k, v in enumerate(rng.uniform(0, 30, users))}
            }
            costs = {"opt": cost}

            optimum = efficient_additive(costs, bids)
            vcg = run_vcg_additive(costs, bids)
            addoff = run_addoff(costs, bids)
            shapley_welfare = accounting.addoff_total_utility(addoff, bids)
            rows.append(
                (
                    optimum.welfare,
                    vcg.welfare,
                    vcg.total_payment,
                    vcg.total_cost,
                    shapley_welfare,
                    addoff.total_payment,
                    addoff.total_cost,
                )
            )
        return np.asarray(rows)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    opt_w, vcg_w, vcg_pay, vcg_cost, shap_w, shap_pay, shap_cost = rows.T

    built = opt_w > 0
    vcg_welfare_ratio = vcg_w[built].sum() / opt_w[built].sum()
    shap_welfare_ratio = shap_w[built].sum() / opt_w[built].sum()
    vcg_recovery = vcg_pay[vcg_cost > 0].sum() / vcg_cost[vcg_cost > 0].sum()
    shap_recovery = shap_pay[shap_cost > 0].sum() / shap_cost[shap_cost > 0].sum()

    table = (
        "== ABL4: the impossibility triangle on random additive games ==\n"
        f"{'corner':<22} {'welfare vs optimum':>20} {'cost recovery':>15}\n"
        f"{'efficient optimum':<22} {1.0:>19.1%} {'(n/a)':>15}\n"
        f"{'VCG':<22} {vcg_welfare_ratio:>19.1%} {vcg_recovery:>14.1%}\n"
        f"{'Shapley (AddOff)':<22} {shap_welfare_ratio:>19.1%} {shap_recovery:>14.1%}"
    )
    emit("abl4_efficiency_frontier", table)

    assert vcg_welfare_ratio == 1.0, "VCG must be exactly efficient"
    assert vcg_recovery < 1.0, "VCG should run a deficit on these games"
    assert abs(shap_recovery - 1.0) < 1e-9, "Shapley recovers cost exactly"
    assert 0.5 < shap_welfare_ratio < 1.0, "Shapley trades some welfare"
