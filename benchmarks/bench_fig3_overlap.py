"""FIG3A/B — Figure 3: usage overlap and the AddOn-Regret gap (Section 7.4).

Panel (a): the mean utility gap grows as 6 single-slot users are squeezed
into fewer slots. Panel (b): the gap grows as each user's value spreads
over a longer service interval. The paper reports gaps of 0.77-2.75 for
(a) and 0.77-0.98 for (b); we assert the directions and positivity.
"""

from __future__ import annotations

from conftest import trials

from repro.experiments import (
    Fig3aConfig,
    Fig3bConfig,
    format_result,
    run_fig3a_slot_count,
    run_fig3b_duration,
)


def test_fig3a_slot_count(benchmark, emit):
    config = Fig3aConfig(trials=trials(300))
    result = benchmark.pedantic(
        lambda: run_fig3a_slot_count(config), rounds=1, iterations=1
    )
    gap = result.get("AddOn minus Regret")
    assert all(v > 0 for v in gap.y), "AddOn must beat Regret at every z"
    # More overlap (fewer slots) -> larger advantage: compare the halves.
    few = sum(gap.y[:4]) / 4
    many = sum(gap.y[-4:]) / 4
    print(f"\nFIG3A mean gap, z<=4: {few:.2f} vs z>=9: {many:.2f} (paper: 2.75 -> 0.77)")
    assert few > many
    emit("fig3a_slot_count", format_result(result))


def test_fig3b_duration(benchmark, emit):
    config = Fig3bConfig(trials=trials(300))
    result = benchmark.pedantic(
        lambda: run_fig3b_duration(config), rounds=1, iterations=1
    )
    gap = result.get("AddOn minus Regret")
    assert all(v > 0 for v in gap.y)
    # Longer durations -> larger advantage (paper: 0.77 -> 0.98).
    short = sum(gap.y[:4]) / 4
    long_ = sum(gap.y[-4:]) / 4
    print(f"\nFIG3B mean gap, d<=4: {short:.2f} vs d>=9: {long_:.2f} (paper: 0.77 -> 0.98)")
    assert long_ > short * 0.9  # weak trend, allow noise
    emit("fig3b_duration", format_result(result))
