"""Relational-engine microbenchmarks: access paths and the halo finder.

Not a paper figure — these keep the substrate honest. The access-path
comparison is the physical fact the whole pricing story rests on: the
narrow view (and the hash index) really are cheaper ways to answer the
merger-tree queries, in wall-clock and in metered cost units alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.astro.halos import friends_of_friends
from repro.astro.simulator import UniverseConfig, UniverseSimulator
from repro.db import Catalog, CostModel, MaterializedView, QueryEngine
from repro.db.expr import Col, Const, Ne
from repro.db.operators import Filter, Project, SeqScan
from repro.db.planner import view_name_for


@pytest.fixture(scope="module")
def loaded_catalog():
    """Two 4k-particle snapshots on a catalog, no auxiliary structures."""
    config = UniverseConfig(
        particles=4000, halos=25, snapshots=2, min_halo_members=10
    )
    snapshots = UniverseSimulator(config, rng=11).run()
    catalog = Catalog()
    names = []
    for snapshot in snapshots:
        catalog.create_table(snapshot.to_table())
        names.append(snapshot.table_name)
    return catalog, names


def _with_view(catalog: Catalog, table_name: str) -> None:
    name = view_name_for(table_name)
    if not catalog.has_view(name):
        base = catalog.table(table_name)
        view = MaterializedView(
            name,
            lambda: Project(
                Filter(SeqScan(base), Ne(Col("halo"), Const(-1))),
                ["pid", "halo"],
            ),
        )
        catalog.create_view(view)


class TestAccessPaths:
    def test_top_contributor_base_scan(self, benchmark, loaded_catalog):
        catalog, names = loaded_catalog
        engine = QueryEngine(catalog)
        top, meter = benchmark(engine.top_contributor, names[1], 0, names[0])
        assert top is not None

    def test_top_contributor_with_view(self, benchmark, loaded_catalog):
        catalog, names = loaded_catalog
        for name in names:
            _with_view(catalog, name)
        engine = QueryEngine(catalog)
        try:
            top, meter = benchmark(engine.top_contributor, names[1], 0, names[0])
        finally:
            for name in names:
                catalog.drop_view(view_name_for(name))
        assert top is not None

    def test_top_contributor_with_indexes(self, benchmark, loaded_catalog):
        catalog, names = loaded_catalog
        catalog.create_hash_index(names[1], "halo")
        catalog.create_hash_index(names[0], "pid")
        engine = QueryEngine(catalog)
        top, meter = benchmark(engine.top_contributor, names[1], 0, names[0])
        assert top is not None

    def test_metered_costs_rank_the_paths(self, benchmark, loaded_catalog, emit):
        """Cost-unit ordering: index < view < base, and results agree."""
        shared, names = loaded_catalog
        # Fresh catalog over the same tables: earlier benchmarks leave
        # auxiliary structures behind in the shared one.
        catalog = Catalog()
        for name in names:
            catalog.create_table(shared.table(name))
        model = CostModel()
        engine = QueryEngine(catalog)

        def measure():
            base = engine.top_contributor(names[1], 0, names[0])
            for name in names:
                _with_view(catalog, name)
            view = engine.top_contributor(names[1], 0, names[0])
            for name in names:
                catalog.drop_view(view_name_for(name))
            catalog.create_hash_index(names[1], "halo")
            catalog.create_hash_index(names[0], "pid")
            index = engine.top_contributor(names[1], 0, names[0])
            return base, view, index

        (base_top, base_meter), (view_top, view_meter), (index_top, index_meter) = (
            benchmark.pedantic(measure, rounds=1, iterations=1)
        )

        base_units = model.units(base_meter)
        view_units = model.units(view_meter)
        index_units = model.units(index_meter)
        table = (
            "== engine access paths: one merger-tree step, 4000 particles ==\n"
            f"{'path':<8} {'cost units':>12} {'progenitor':>11}\n"
            f"{'base':<8} {base_units:>12.0f} {str(base_top):>11}\n"
            f"{'view':<8} {view_units:>12.0f} {str(view_top):>11}\n"
            f"{'index':<8} {index_units:>12.0f} {str(index_top):>11}"
        )
        emit("engine_access_paths", table)
        assert base_top == view_top == index_top
        assert view_units < base_units
        assert index_units < view_units


@pytest.fixture(scope="module")
def large_catalog():
    """Two 40k-particle snapshots — the columnar path's home turf."""
    config = UniverseConfig(
        particles=40_000, halos=30, snapshots=2, min_halo_members=10
    )
    snapshots = UniverseSimulator(config, rng=11).run()
    catalog = Catalog()
    names = []
    for snapshot in snapshots:
        catalog.create_table(snapshot.to_table())
        names.append(snapshot.table_name)
    return catalog, names


class TestColumnarAccessPaths:
    """The same access paths at 40k particles through the vector engine.

    ``benchmarks/bench_columnar.py`` asserts the >= 10x floor against the
    iterator engine; these keep per-path wall-clock numbers visible at
    scale (the iterator engine is benchmarked at 4k above — running it
    at 40k per round would dominate the benchmark session).
    """

    def test_top_contributor_base_scan_vector(self, benchmark, large_catalog):
        catalog, names = large_catalog
        engine = QueryEngine(catalog, mode="vector")
        top, meter = benchmark(engine.top_contributor, names[1], 0, names[0])
        assert top is not None

    def test_top_contributor_with_view_vector(self, benchmark, large_catalog):
        catalog, names = large_catalog
        for name in names:
            _with_view(catalog, name)
        engine = QueryEngine(catalog, mode="vector")
        try:
            top, meter = benchmark(engine.top_contributor, names[1], 0, names[0])
        finally:
            for name in names:
                catalog.drop_view(view_name_for(name))
        assert top is not None

    def test_top_contributor_with_indexes_vector(self, benchmark, large_catalog):
        catalog, names = large_catalog
        catalog.create_hash_index(names[1], "halo")
        catalog.create_hash_index(names[0], "pid")
        engine = QueryEngine(catalog, mode="vector")
        top, meter = benchmark(engine.top_contributor, names[1], 0, names[0])
        assert top is not None

    def test_vector_meters_match_iterator(self, large_catalog):
        """The rewrite is invisible to the cost model, also at scale."""
        catalog, names = large_catalog
        iterator = QueryEngine(catalog, mode="iterator")
        vector = QueryEngine(catalog, mode="vector")
        top_i, meter_i = iterator.top_contributor(names[1], 0, names[0])
        top_v, meter_v = vector.top_contributor(names[1], 0, names[0])
        assert top_i == top_v
        assert meter_i == meter_v


class TestHaloFinderScaling:
    @pytest.mark.parametrize("particles", [1000, 4000, 16000, 40000])
    def test_fof_scaling(self, benchmark, particles):
        rng = np.random.default_rng(5)
        centers = rng.uniform(0, 300, size=(30, 3))
        assignment = rng.integers(0, 30, size=particles)
        positions = centers[assignment] + rng.normal(0, 1.5, size=(particles, 3))
        labels = benchmark(
            friends_of_friends, positions, 2.4, 10
        )
        assert labels.max() >= 0
