"""ABL5 — manipulation robustness: Regret trusts bids, AddOn doesn't.

The paper's first critique of the regret-based state of the art is that it
*assumes* truthful value reports (Section 8). This ablation quantifies the
exposure: on random single-optimization games, each user grid-searches a
best-response misreport (scaling her declared values) while everyone else
stays truthful. Under AddOn the best deviation never beats truth (its
truthfulness theorem, measured); under Regret, users routinely find
profitable lies, and the lies also erode the cloud's recovery.
"""

from __future__ import annotations

import numpy as np
from conftest import trials

from repro import AdditiveBid, run_addon
from repro.baseline.regret import run_regret_additive
from repro.core import accounting
from repro.utils.rng import spawn_rngs
from repro.workloads.scenarios import additive_single_slot_game

SCALES = (0.0, 0.25, 0.5, 0.75, 1.25, 1.5, 2.0, 4.0)
SLOTS = 12
USERS = 6
COST = 0.6


def _scaled(bid: AdditiveBid, factor: float) -> AdditiveBid:
    return AdditiveBid(bid.schedule.scaled(factor))


def _regret_utility(cost, bids, user, truth) -> float:
    """User utility under Regret with possibly untruthful declarations."""
    outcome = run_regret_additive(cost, bids, horizon=SLOTS)
    if not outcome.implemented or user not in outcome.serviced:
        return 0.0
    realized = truth.residual(outcome.implemented_at + 1)
    return realized - outcome.price


def _addon_utility(cost, bids, user, truth) -> float:
    outcome = run_addon(cost, bids, horizon=SLOTS)
    return accounting.addon_user_utility(outcome, user, truth)


def _best_deviation_gain(utility_fn, cost, bids, user) -> float:
    truth = bids[user]
    honest = utility_fn(cost, bids, user, truth)
    best = honest
    for scale in SCALES:
        deviated = dict(bids)
        deviated[user] = _scaled(truth, scale)
        best = max(best, utility_fn(cost, deviated, user, truth))
    return best - honest


def test_abl5_manipulation_robustness(benchmark, emit):
    n = trials(400)

    def run():
        addon_gains = []
        regret_gains = []
        for rng in spawn_rngs(2012, n):
            bids = additive_single_slot_game(rng, USERS, SLOTS)
            for user in bids:
                addon_gains.append(
                    _best_deviation_gain(_addon_utility, COST, bids, user)
                )
                regret_gains.append(
                    _best_deviation_gain(_regret_utility, COST, bids, user)
                )
        return np.asarray(addon_gains), np.asarray(regret_gains)

    addon_gains, regret_gains = benchmark.pedantic(run, rounds=1, iterations=1)
    table = (
        "== ABL5: best-response misreport gains (grid over value scales) ==\n"
        f"{'mechanism':<10} {'mean gain':>10} {'users with a profitable lie':>29}\n"
        f"{'AddOn':<10} {addon_gains.mean():>10.4f} "
        f"{(addon_gains > 1e-9).mean():>28.1%}\n"
        f"{'Regret':<10} {regret_gains.mean():>10.4f} "
        f"{(regret_gains > 1e-9).mean():>28.1%}"
    )
    emit("abl5_manipulation", table)
    assert addon_gains.max() <= 1e-9, "AddOn must leave no profitable lie"
    assert (regret_gains > 1e-9).mean() > 0.05, (
        "Regret should be manipulable by a nontrivial fraction of users"
    )
