"""FIG2A-D — Figure 2: utility vs cost by collaboration size (Section 7.3).

Four panels: additive/substitutive x small (6 users) / large (24 users).
Shape assertions encode Section 7.3's claims: the mechanisms never go
negative (utility or balance); Regret's balance then utility sink below
zero as costs grow; in large collaborations Regret briefly beats AddOn in
a mid-cost band; averaged over the positive-Regret range the mechanisms
win by the reported kind of factors.
"""

from __future__ import annotations

from conftest import trials

from repro.experiments import (
    Fig2AdditiveConfig,
    Fig2SubstitutiveConfig,
    format_result,
    run_fig2_additive,
    run_fig2_substitutive,
)


def _mechanism_invariants(result, mechanism_name: str) -> None:
    mech = result.get(f"{mechanism_name} Utility")
    assert min(mech.y) >= -1e-9, f"{mechanism_name} utility went negative"


def _regret_sinks(result) -> None:
    assert min(result.get("Regret Balance").y) < 0, "Regret never made a loss"
    assert min(result.get("Regret Utility").y) < 0, "Regret utility never sank"


def test_fig2a_additive_small(benchmark, emit):
    config = Fig2AdditiveConfig.small(trials=trials(400))
    result = benchmark.pedantic(
        lambda: run_fig2_additive(config), rounds=1, iterations=1
    )
    _mechanism_invariants(result, "AddOn")
    _regret_sinks(result)
    # Small collaborations: AddOn dominates Regret across the whole grid.
    addon = result.get("AddOn Utility").y
    regret = result.get("Regret Utility").y
    assert sum(addon) > sum(regret)
    # Average advantage over the positive-Regret range (paper: 1.43x).
    pairs = [(a, r) for a, r in zip(addon, regret) if r > 0.05]
    advantage = sum(a for a, _ in pairs) / sum(r for _, r in pairs)
    print(f"\nFIG2A AddOn/Regret over positive-Regret range: {advantage:.2f}x (paper 1.43x)")
    assert advantage > 1.0
    emit("fig2a_additive_small", format_result(result, max_rows=25))


def test_fig2b_additive_large(benchmark, emit):
    config = Fig2AdditiveConfig.large(trials=trials(200))
    result = benchmark.pedantic(
        lambda: run_fig2_additive(config), rounds=1, iterations=1
    )
    _mechanism_invariants(result, "AddOn")
    _regret_sinks(result)
    # Large collaborations: a band where Regret beats AddOn exists...
    addon = result.get("AddOn Utility").y
    regret = result.get("Regret Utility").y
    assert any(r > a for a, r in zip(addon, regret)), "expected a Regret-wins band"
    # ...but overall averages favor the mechanism (paper: 0.87 vs -0.63
    # over [0, 3.0] — sign pattern is the claim we keep).
    assert sum(addon) / len(addon) > sum(regret) / len(regret)
    emit("fig2b_additive_large", format_result(result, max_rows=25))


def test_fig2c_substitutive_small(benchmark, emit):
    config = Fig2SubstitutiveConfig.small(trials=trials(150))
    result = benchmark.pedantic(
        lambda: run_fig2_substitutive(config), rounds=1, iterations=1
    )
    _mechanism_invariants(result, "SubstOn")
    assert min(result.get("Regret Balance").y) < 0
    subston = result.get("SubstOn Utility").y
    regret = result.get("Regret Utility").y
    assert all(s >= r - 1e-9 for s, r in zip(subston, regret))
    emit("fig2c_substitutive_small", format_result(result, max_rows=25))


def test_fig2d_substitutive_large(benchmark, emit):
    config = Fig2SubstitutiveConfig.large(trials=trials(60))
    result = benchmark.pedantic(
        lambda: run_fig2_substitutive(config), rounds=1, iterations=1
    )
    _mechanism_invariants(result, "SubstOn")
    subston = result.get("SubstOn Utility").y
    regret = result.get("Regret Utility").y
    assert sum(subston) > sum(regret)
    emit("fig2d_substitutive_large", format_result(result, max_rows=25))
