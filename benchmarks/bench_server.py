"""Serving-layer throughput, tail latency, and group-commit efficiency.

The asyncio gateway server (:mod:`repro.gateway.server`) converts
client concurrency into *batch size*: concurrently arriving envelopes
share one batched ``dispatch`` call and — on a durable service — one WAL
fsync. This benchmark drives a durable in-process server over real
HTTP/1.1 loopback sockets with a pool of blocking clients and reports:

* sustained **requests/second** and **p50/p99 latency** at the headline
  scale (50,000 distinct tenants submitting bids);
* **fsyncs per request** — the group-commit dividend. The recorded
  headline is its inverse, requests-per-fsync (bigger is better), with
  a hard floor of 1.0: if batching ever degrades to an fsync per
  request, the durable serving path has regressed;
* **overload shedding**: a deliberately tiny admission bound under a
  stalled core must shed typed ``overloaded`` replies while every
  admitted request still completes — no hangs, no silent drops.

Run as a script for the full table:

    PYTHONPATH=src python benchmarks/bench_server.py
"""

from __future__ import annotations

import asyncio
import tempfile
import threading
import time

import harness
from repro.gateway import Configure, ErrorReply, PricingService, SubmitBids
from repro.gateway.client import GatewayClient
from repro.gateway.server import ServerConfig, ServerThread
from repro.obs import MetricsRegistry

#: (users, client threads) — the headline scale and the CI smoke scale.
USERS, THREADS = harness.scale((50_000, 16), (400, 4))

SEED = 2012
OPTS = tuple((f"opt{i}", 50.0) for i in range(8))


def _sorted_list_percentile(samples: list, q: float) -> float:
    """The pre-obs percentile math this bench used: nearest rank over the
    merged sorted sample list."""
    merged = sorted(samples)
    return merged[min(len(merged) - 1, int(len(merged) * q))]


def _check_percentile_identity() -> None:
    """obs.Histogram must reproduce the old sorted-list percentiles
    exactly when the samples sit on bucket bounds — the property that
    makes swapping the bench's math for the shared histogram safe."""
    registry = MetricsRegistry()
    histogram = registry.histogram("bench_check_seconds", "identity probe")
    buckets = histogram.buckets
    fixed = [buckets[3]] * 55 + [buckets[9]] * 40 + [buckets[17]] * 5
    for value in fixed:
        histogram.observe(value)
    for q in (0.5, 0.9, 0.99):
        old = _sorted_list_percentile(fixed, q)
        assert histogram.percentile(q) == old, (q, histogram.percentile(q), old)


def _run_throughput():
    """Drive USERS unique-tenant submissions through a durable server;
    returns (req_per_s, p50_s, p99_s, fsyncs_per_request)."""
    with tempfile.TemporaryDirectory() as tmp:
        service = PricingService()
        service.attach_wal(tmp)
        thread = ServerThread(
            service,
            ServerConfig(
                port=0,
                max_pending=4 * THREADS,
                tenant_pending=THREADS,
                max_delay=0.002,
            ),
        )
        host, port = thread.start()
        setup = GatewayClient(host, port)
        setup.request(Configure(optimizations=OPTS, horizon=4))
        # One shared histogram instead of per-thread lists + a sorted
        # merge: child mutation is lock-protected, and the percentile
        # identity with the old math is asserted by
        # _check_percentile_identity before the numbers are trusted.
        registry = MetricsRegistry()
        latency = registry.histogram(
            "bench_server_latency_seconds", "client-observed request latency"
        )
        failures: list = []

        def worker(index: int) -> None:
            client = GatewayClient(host, port)
            try:
                for user in range(index, USERS, THREADS):
                    request = SubmitBids(
                        tenant=f"u{user}",
                        bids=((OPTS[user % len(OPTS)][0], 1, (1.0,)),),
                    )
                    begin = time.perf_counter()
                    reply = client.request(request)
                    latency.observe(time.perf_counter() - begin)
                    if isinstance(reply, ErrorReply):
                        failures.append(reply)
            finally:
                client.close()

        workers = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        begin = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        elapsed = time.perf_counter() - begin
        health = setup.health()
        setup.close()
        thread.stop()
        service.close()

    assert not failures, f"bids rejected during the bench: {failures[:3]}"
    assert health["dispatched"] == USERS + 1  # every submit + the config
    assert latency.count == USERS
    p50 = latency.percentile(0.5)
    p99 = latency.percentile(0.99)
    fsync_ratio = health["fsyncs"] / health["dispatched"]
    return USERS / elapsed, p50, p99, fsync_ratio


def _run_shedding():
    """Flood a tiny admission window over a stalled core; returns
    (served, shed, untyped_failures)."""

    async def stall(_requests) -> None:
        await asyncio.sleep(0.002)  # a deliberately slow pricing core

    service = PricingService()
    thread = ServerThread(
        service,
        ServerConfig(port=0, max_pending=THREADS, max_delay=0.001),
        stall_hook=stall,
    )
    host, port = thread.start()
    served = []
    shed = []
    untyped = []
    per_thread = max(USERS // (THREADS * 50), 10)

    def worker() -> None:
        client = GatewayClient(host, port, max_attempts=1)
        try:
            for _ in range(per_thread):
                try:
                    reply = client.request(
                        Configure(optimizations=OPTS, horizon=4)
                    )
                except Exception as exc:  # hangs/raises are the failure mode
                    untyped.append(exc)
                    continue
                if isinstance(reply, ErrorReply):
                    assert reply.code == "overloaded", reply
                    shed.append(reply)
                else:
                    served.append(reply)
        finally:
            client.close()

    workers = [threading.Thread(target=worker) for _ in range(2 * THREADS)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    thread.stop()
    service.close()
    return len(served), len(shed), len(untyped)


def test_server_throughput_and_group_commit(emit):
    """Acceptance bar: fsyncs/request < 1 on the durable serving path."""
    _check_percentile_identity()
    req_per_s, p50, p99, fsync_ratio = _run_throughput()
    served, shed, untyped = _run_shedding()
    total = served + shed
    emit(
        "server_http",
        "\n".join(
            [
                "== asyncio serving layer over HTTP/1.1 loopback "
                f"({USERS} tenants, {THREADS} client threads, WAL on) ==",
                f"{'req/s':>10} {'p50 ms':>8} {'p99 ms':>8} {'fsync/req':>10}",
                f"{req_per_s:>10.0f} {p50 * 1e3:>8.2f} {p99 * 1e3:>8.2f} "
                f"{fsync_ratio:>10.3f}",
                f"overload flood: {served} served + {shed} shed typed "
                f"of {total} ({untyped} untyped failures)",
            ]
        ),
    )
    harness.record(
        "server_http",
        # Harness convention is "bigger is better": requests per fsync.
        # 1.0 means group commit stopped batching entirely.
        speedup=1.0 / max(fsync_ratio, 1e-9),
        n=USERS,
        seed=SEED,
        floor=1.0,
        extra={
            "req_per_s": round(req_per_s, 1),
            "p50_ms": round(p50 * 1e3, 3),
            "p99_ms": round(p99 * 1e3, 3),
            "fsyncs_per_request": round(fsync_ratio, 4),
            "threads": THREADS,
            "overload": {"served": served, "shed": shed, "untyped": untyped},
        },
    )
    assert untyped == 0, f"{untyped} requests failed without a typed reply"
    assert served > 0  # admission always lets *some* work through
    if harness.enforce_floors():
        assert fsync_ratio < 1.0, (
            f"group commit degraded to {fsync_ratio:.3f} fsyncs/request "
            f"at {USERS} tenants / {THREADS} threads"
        )
        assert shed > 0, "the overload flood never tripped admission control"


if __name__ == "__main__":

    class _Stdout:
        def __call__(self, name, text):
            print(text)

    test_server_throughput_and_group_commit(_Stdout())
