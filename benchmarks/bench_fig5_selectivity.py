"""FIG5A/B — Figure 5: selectivity of substitutes (Section 7.6).

Users draw 3 substitutes from a pool of 4 (panel a) or 12 (panel b). More
selective users (larger pool) lower both approaches' utility; SubstOn
sustains a utility of 1.0 at mean costs a multiple of those where Regret
last manages 1.0 (paper: 2.5x and 12.5x).
"""

from __future__ import annotations

from conftest import trials

from repro.experiments import Fig5Config, format_result, run_fig5_selectivity


def _reach(series, level: float = 1.0) -> float:
    """Largest mean cost at which the series still clears ``level``."""
    return max((x for x, y in zip(series.x, series.y) if y >= level), default=0.0)


def test_fig5a_low_selectivity(benchmark, emit):
    config = Fig5Config.low_selectivity(trials=trials(150))
    result = benchmark.pedantic(
        lambda: run_fig5_selectivity(config), rounds=1, iterations=1
    )
    subston = result.get("SubstOn Utility")
    regret = result.get("Regret Utility")
    assert min(subston.y) >= -1e-9
    factor = _reach(subston) / max(_reach(regret), 1e-9)
    print(f"\nFIG5A cost-reach factor at utility 1.0: {factor:.1f}x (paper 2.5x)")
    assert factor > 1.0
    emit("fig5a_low_selectivity", format_result(result, max_rows=25))


def test_fig5b_high_selectivity(benchmark, emit):
    config = Fig5Config.high_selectivity(trials=trials(150))
    result = benchmark.pedantic(
        lambda: run_fig5_selectivity(config), rounds=1, iterations=1
    )
    subston = result.get("SubstOn Utility")
    regret = result.get("Regret Utility")
    assert min(subston.y) >= -1e-9
    factor = _reach(subston) / max(_reach(regret), 1e-9)
    print(f"\nFIG5B cost-reach factor at utility 1.0: {factor:.1f}x (paper 12.5x)")
    assert factor > 1.5
    emit("fig5b_high_selectivity", format_result(result, max_rows=25))


def test_fig5_selectivity_lowers_utility(benchmark, emit):
    """The cross-panel claim: more selective users -> less utility."""

    def run_both():
        low = run_fig5_selectivity(
            Fig5Config.low_selectivity(mean_costs=(0.36,), trials=trials(200))
        )
        high = run_fig5_selectivity(
            Fig5Config.high_selectivity(mean_costs=(0.36,), trials=trials(200))
        )
        return low, high

    low, high = benchmark.pedantic(run_both, rounds=1, iterations=1)
    low_s = low.get("SubstOn Utility").y[0]
    high_s = high.get("SubstOn Utility").y[0]
    low_r = low.get("Regret Utility").y[0]
    high_r = high.get("Regret Utility").y[0]
    print(
        f"\nFIG5 at cost 0.36 — SubstOn: {low_s:.2f} -> {high_s:.2f} "
        f"(paper 2.38 -> 1.90); Regret: {low_r:.2f} -> {high_r:.2f} "
        f"(paper 1.10 -> -0.23)"
    )
    assert high_s < low_s
    assert high_r < low_r
    emit(
        "fig5_selectivity_point",
        f"SubstOn utility at mean cost 0.36: 3-of-4 {low_s:.3f}, 3-of-12 {high_s:.3f}\n"
        f"Regret  utility at mean cost 0.36: 3-of-4 {low_r:.3f}, 3-of-12 {high_r:.3f}",
    )
