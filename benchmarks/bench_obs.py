"""Observability overhead: the serving stack with metrics on vs off.

:mod:`repro.obs` instruments the hot serving paths — per-request server
accounting, WAL append/fsync timers, per-kind dispatch timers, per-slot
fleet timers. The whole point of the design (coarse granularity, no
per-bid metrics, timers that skip the clock when disabled) is that
having it all **enabled** costs almost nothing. This benchmark proves
it on the two workloads the instrumentation rides:

* the durable HTTP serving workload of ``bench_server.py`` (per-request
  counters + latency histograms + WAL append/fsync timers on every
  group commit);
* the multi-process fleet workload of ``bench_fleet_mp.py`` (per-slot
  advance timers, per-worker chunk timers).

Each workload runs alternately with the process-wide registry disabled
and enabled (best of ``REPEATS`` per mode); the headline ratio is
``disabled_seconds / enabled_seconds`` per workload, and the floor
(full runs only) asserts the enabled run keeps >= 95% of the disabled
throughput — i.e. the instrumentation tax stays under 5%. Run as a
script for the table:

    PYTHONPATH=src python benchmarks/bench_obs.py
"""

from __future__ import annotations

import tempfile
import threading
import time

import harness
from repro import obs
from repro.cloudsim import OptimizationCatalog
from repro.fleet import FleetEngine
from repro.gateway import Configure, PricingService, SubmitBids
from repro.gateway.client import GatewayClient
from repro.gateway.server import ServerConfig, ServerThread
from repro.workloads.fleet import fleet_batches, fleet_game_costs

#: Server workload scale: (requests, client threads).
REQUESTS, THREADS = harness.scale((6_000, 8), (200, 4))

#: Fleet workload scale: (games, users, slots, workers).
GAMES, USERS, SLOTS, WORKERS = harness.scale(
    (40, 60_000, 400, 2), (8, 2_000, 60, 2)
)

REPEATS = 3
SEED = 2012
OPTS = tuple((f"opt{i}", 50.0) for i in range(8))

#: Enabled must keep >= 95% of disabled throughput (tax < ~5%).
OVERHEAD_FLOOR = 0.95


def _serve_once() -> float:
    """One durable serving run; returns wall seconds."""
    with tempfile.TemporaryDirectory() as tmp:
        service = PricingService()
        service.attach_wal(tmp)
        thread = ServerThread(
            service,
            ServerConfig(
                port=0,
                max_pending=4 * THREADS,
                tenant_pending=THREADS,
                max_delay=0.002,
            ),
        )
        host, port = thread.start()
        setup = GatewayClient(host, port)
        setup.request(Configure(optimizations=OPTS, horizon=4))

        def worker(index: int) -> None:
            client = GatewayClient(host, port)
            try:
                for user in range(index, REQUESTS, THREADS):
                    client.request(
                        SubmitBids(
                            tenant=f"u{user}",
                            bids=((OPTS[user % len(OPTS)][0], 1, (1.0,)),),
                        )
                    )
            finally:
                client.close()

        workers = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        begin = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        elapsed = time.perf_counter() - begin
        setup.close()
        thread.stop()
        service.close()
    return elapsed


def _fleet_once(catalog, batches) -> float:
    """One multi-process fleet period; returns wall seconds."""
    begin = time.perf_counter()
    fleet = FleetEngine.build(catalog, horizon=SLOTS, workers=WORKERS)
    try:
        fleet.ingest_many(batches)
        fleet.run_to_end()
    finally:
        fleet.close()
    return time.perf_counter() - begin


def _best_of_modes(run) -> tuple[float, float]:
    """(disabled_best, enabled_best) seconds, modes alternated so drift
    hits both equally."""
    disabled, enabled = [], []
    for _ in range(REPEATS):
        obs.disable()
        try:
            disabled.append(run())
        finally:
            obs.enable()
        enabled.append(run())
    return min(disabled), min(enabled)


def test_obs_overhead_under_five_percent(emit):
    """Acceptance bar: enabled-metrics throughput >= 95% of disabled."""
    obs.reset()
    costs = fleet_game_costs(SEED, GAMES, 30.0)
    catalog = OptimizationCatalog.from_costs(costs)
    batches = fleet_batches(SEED + 1, USERS, GAMES, SLOTS, 4)

    server_off, server_on = _best_of_modes(_serve_once)
    fleet_off, fleet_on = _best_of_modes(
        lambda: _fleet_once(catalog, batches)
    )
    # The registry really was collecting during the enabled runs.
    snapshot = obs.snapshot()
    assert "repro_server_requests_total" in snapshot
    assert "repro_wal_append_seconds" in snapshot
    assert "repro_fleet_slot_advance_seconds" in snapshot

    server_ratio = server_off / server_on
    fleet_ratio = fleet_off / fleet_on
    headline = min(server_ratio, fleet_ratio)
    emit(
        "obs_overhead",
        "\n".join(
            [
                "== repro.obs overhead: metrics disabled vs enabled "
                f"(best of {REPEATS}) ==",
                f"{'workload':>12} {'off s':>9} {'on s':>9} {'off/on':>8}",
                f"{'server':>12} {server_off:>9.3f} {server_on:>9.3f} "
                f"{server_ratio:>7.3f}x",
                f"{'fleet-mp':>12} {fleet_off:>9.3f} {fleet_on:>9.3f} "
                f"{fleet_ratio:>7.3f}x",
                f"(server: {REQUESTS} requests / {THREADS} threads, WAL on; "
                f"fleet: {GAMES} games / {USERS} users / {SLOTS} slots / "
                f"{WORKERS} workers)",
            ]
        ),
    )
    harness.record(
        "obs_overhead",
        # Bigger is better: disabled/enabled throughput ratio, worst
        # workload. 1.0 means free; under OVERHEAD_FLOOR means the
        # instrumentation tax broke its budget.
        speedup=headline,
        n=REQUESTS,
        seed=SEED,
        floor=OVERHEAD_FLOOR if harness.enforce_floors() else None,
        extra={
            "server_ratio": round(server_ratio, 4),
            "fleet_ratio": round(fleet_ratio, 4),
            "server_off_s": round(server_off, 3),
            "server_on_s": round(server_on, 3),
            "fleet_off_s": round(fleet_off, 3),
            "fleet_on_s": round(fleet_on, 3),
            "threads": THREADS,
            "fleet": {
                "games": GAMES,
                "users": USERS,
                "slots": SLOTS,
                "workers": WORKERS,
            },
        },
    )
    if harness.enforce_floors():
        assert headline >= OVERHEAD_FLOOR, (
            f"metrics overhead broke the 5% budget: server {server_ratio:.3f}x, "
            f"fleet {fleet_ratio:.3f}x disabled/enabled"
        )


if __name__ == "__main__":

    class _Stdout:
        def __call__(self, name, text):
            print(text)

    test_obs_overhead_under_five_percent(_Stdout())
