"""FIG1 — Figure 1: the astronomy use-case (Section 7.2).

Regenerates the figure's four series (baseline cost, AddOn utility, Regret
utility, Regret balance vs workload executions) twice: once from the
paper's published value table, once from values measured on the
:mod:`repro.db` engine over the synthetic universe. Shape assertions encode
the section's claims: AddOn is always non-negative, lands in a band around
the published 28-47% of baseline cost at high usage, beats Regret, and the
cloud never loses money under AddOn while Regret's balance goes negative.
"""

from __future__ import annotations

from conftest import trials

from repro.experiments import Fig1Config, format_result, run_fig1_astronomy


def _check_shape(result) -> None:
    baseline = result.get("Baseline Cost")
    addon = result.get("AddOn Utility")
    regret = result.get("Regret Utility")
    assert min(addon.y) >= -1e-9, "AddOn utility must never be negative"
    ratio = addon.at(90) / baseline.at(90)
    assert 0.15 < ratio < 0.85, f"AddOn/baseline ratio {ratio:.2f} out of band"
    assert addon.at(90) > regret.at(90), "AddOn must beat Regret at high usage"


def test_fig1_paper_values(benchmark, emit):
    config = Fig1Config(values="paper", samples=trials(150))
    result = benchmark.pedantic(
        lambda: run_fig1_astronomy(config), rounds=1, iterations=1
    )
    _check_shape(result)
    emit("fig1_paper_values", format_result(result))


def test_fig1_engine_values(benchmark, emit, astronomy_use_case):
    config = Fig1Config(values="engine", samples=trials(150))
    result = benchmark.pedantic(
        lambda: run_fig1_astronomy(config, use_case=astronomy_use_case),
        rounds=1,
        iterations=1,
    )
    baseline = result.get("Baseline Cost")
    addon = result.get("AddOn Utility")
    assert min(addon.y) >= -1e-9
    assert addon.at(90) > 0
    assert addon.at(90) > result.get("Regret Utility").at(90)
    emit("fig1_engine_values", format_result(result))


def test_fig1_workload_runtimes(benchmark, emit, astronomy_use_case):
    """The calibration table behind Figure 1: paper vs measured runtimes."""
    uc = astronomy_use_case
    # Time one full workload execution on the engine; the table below is
    # assembled from the use case's precomputed measurements.
    benchmark.pedantic(
        lambda: uc.workloads[2].run(uc.engine, uc.table_names),
        rounds=1,
        iterations=1,
    )
    paper = (81.0, 36.0, 16.0, 83.0, 44.0, 17.0)
    lines = ["== astronomy workload runtimes (minutes) =="]
    lines.append(f"{'astronomer':<32} {'paper':>8} {'measured':>10}")
    for k, workload in enumerate(uc.workloads):
        lines.append(
            f"{workload.name:<32} {paper[k]:>8.1f} {uc.runtimes_min[k]:>10.1f}"
        )
    final_view = uc.view_names[-1]
    paper_savings = (44.0, 18.0, 8.0, 39.0, 23.0, 9.0)
    lines.append("")
    lines.append("== final-snapshot view savings (minutes) ==")
    lines.append(f"{'astronomer':<32} {'paper':>8} {'measured':>10}")
    for k, workload in enumerate(uc.workloads):
        measured = uc.savings_min.get((k, final_view), 0.0)
        lines.append(
            f"{workload.name:<32} {paper_savings[k]:>8.1f} {measured:>10.1f}"
        )
    costs = list(uc.view_costs.values())
    lines.append("")
    lines.append(
        f"view costs: mean ${sum(costs)/len(costs):.2f} (paper $2.31), "
        f"min ${min(costs):.2f}, max ${max(costs):.2f}"
    )
    emit("fig1_calibration", "\n".join(lines))
    assert abs(uc.runtimes_min[0] - 81.0) < 1e-6
    assert abs(sum(costs) / len(costs) - 2.31) < 1e-9
