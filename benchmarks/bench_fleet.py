"""Fleet engine vs N independent CloudService runs, at fleet scale.

Races the same multi-game workload two ways:

* **services** — one :class:`repro.cloudsim.CloudService` per
  optimization, each fed its own users through the object API and advanced
  through every slot: N independent per-game loops.
* **fleet** — one :class:`repro.fleet.FleetEngine` over the whole catalog,
  bulk-ingesting the identical population as columnar batches and making
  one pass over the fleet's arrivals/departures per slot.

Outcomes are checked identical (payments, grants, implementation slots,
exact equality — no tolerance) on every point before any timing is
trusted; timings are best-of-3 per side to absorb scheduler noise. The
acceptance bar is a >= 5x wall-clock speedup at 200 concurrent games and
50,000 users; run as a script for the full table:

    PYTHONPATH=src python benchmarks/bench_fleet.py
"""

from __future__ import annotations

import harness
from repro.experiments import measure_fleet_point

#: (games, users, slots) rows of the table; the last row is the bar.
#: Smoke mode shrinks them so CI proves the benchmark code runs.
SCALES = harness.scale(
    (
        (50, 12_500, 1000),
        (100, 25_000, 2000),
        (200, 50_000, 6000),
    ),
    ((5, 300, 50),),
)

SPEEDUP_FLOOR = 5.0
SEED = 2012


def test_fleet_speedup_at_200_games(emit):
    """Acceptance bar: >= 5x over independent services at 200 games."""
    rows = []
    for games, users, slots in SCALES:
        services_s, fleet_s = measure_fleet_point(
            games=games, users=users, slots=slots, repeats=3, seed=SEED
        )
        rows.append((games, users, slots, services_s, fleet_s))
    table = "\n".join(
        [
            "== fleet engine vs N independent CloudService runs "
            "(identical outcomes asserted) ==",
            f"{'games':>6} {'users':>7} {'slots':>6} "
            f"{'services s':>11} {'fleet s':>9} {'speedup':>9}",
        ]
        + [
            f"{g:>6} {u:>7} {z:>6} {s:>11.3f} {f:>9.3f} {s / f:>8.1f}x"
            for g, u, z, s, f in rows
        ]
    )
    emit("fleet_engine", table)
    games, users, _, services_s, fleet_s = rows[-1]
    speedup = services_s / fleet_s
    harness.record(
        "fleet_engine",
        speedup=speedup,
        n=users,
        seed=SEED,
        floor=SPEEDUP_FLOOR,
        extra={"games": games, "scales": [list(r[:3]) for r in rows]},
    )
    if harness.enforce_floors():
        assert speedup >= SPEEDUP_FLOOR, (
            f"fleet only {speedup:.1f}x faster at {games} games / {users} users"
        )


if __name__ == "__main__":

    class _Stdout:
        def __call__(self, name, text):
            print(text)

    test_fleet_speedup_at_200_games(_Stdout())
