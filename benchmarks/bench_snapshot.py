"""Sealed-segment COW shadow vs invalidate-and-rebuild, plus pin overhead.

Two claims of the epoch/snapshot work are measured:

* **Interleaved insert+scan is no longer quadratic.** The old column
  cache was invalidated by every insert and rebuilt from the row store by
  the next scan, so N interleaved (insert, scan) rounds cost O(N^2) row
  visits. The sealed-segment shadow appends only the delta, so the same
  interleaving costs O(N). The headline ratio races the two on identical
  rounds, after asserting the rebuilt arrays are bit-identical to the
  sealed ones.
* **Snapshot pinning is nearly free.** Every gateway query now pins a
  ``CatalogSnapshot``; the full-run assertion holds the overhead of
  pin-per-query against reusing one pinned snapshot under
  ``OVERHEAD_CEILING`` (5%), with identical rows and identical CostMeter
  charges asserted first.

Run as a script for the full table:

    PYTHONPATH=src python benchmarks/bench_snapshot.py
"""

from __future__ import annotations

import time

import numpy as np

import harness
from repro.db import Catalog, CostModel, QueryEngine, Schema, Table

ROUNDS = harness.scale(2_000, 100)
SEED_ROWS = harness.scale(2_000, 100)
QUERY_ROWS = harness.scale(40_000, 2_000)
QUERIES = harness.scale(200, 10)
HALOS = 24
SEED = 19
SPEEDUP_FLOOR = 3.0
OVERHEAD_CEILING = 0.05
REPEATS = 5


def _seed_table(name: str, rows: int) -> Table:
    rng = np.random.default_rng(SEED)
    return Table.from_columns(
        name,
        Schema.of(pid="int", halo="int"),
        {"pid": np.arange(rows), "halo": rng.integers(-1, HALOS, size=rows)},
    )


def _interleaved_sealed(table: Table, rounds: int):
    """insert+scan rounds through the sealed-segment shadow."""
    checksum = 0
    base = len(table)
    for i in range(rounds):
        table.insert((base + i, i % HALOS))
        batch = table.as_batch()
        checksum += int(batch.columns[0][-1])
    return checksum


def _interleaved_rebuild(table: Table, rounds: int):
    """The same rounds under the old contract: every insert invalidates,
    every scan rebuilds all columns from the row store."""
    checksum = 0
    base = len(table)
    positions = range(len(table.schema.columns))
    for i in range(rounds):
        table.insert((base + i, i % HALOS))
        rows = list(table.rows())
        columns = [
            np.array([row[pos] for row in rows], dtype=np.int64)
            for pos in positions
        ]
        checksum += int(columns[0][-1])
    return columns, checksum


def measure_interleaving() -> tuple[float, float, float]:
    """(sealed_s, rebuild_s, rounds/s through the sealed path)."""
    # Equivalence first: the sealed shadow and a from-rows rebuild must
    # produce bit-identical columns after the same mutations.
    sealed_table = _seed_table("sealed_check", SEED_ROWS)
    rebuild_table = _seed_table("rebuild_check", SEED_ROWS)
    check_rounds = min(ROUNDS, 200)
    _interleaved_sealed(sealed_table, check_rounds)
    rebuilt, _ = _interleaved_rebuild(rebuild_table, check_rounds)
    batch = sealed_table.as_batch()
    for column, reference in zip(batch.columns, rebuilt, strict=True):
        assert np.array_equal(column, reference), "sealed shadow diverged"

    sealed_s = float("inf")
    rebuild_s = float("inf")
    for _ in range(3):
        table = _seed_table("sealed", SEED_ROWS)
        start = time.perf_counter()
        _interleaved_sealed(table, ROUNDS)
        sealed_s = min(sealed_s, time.perf_counter() - start)

        table = _seed_table("rebuild", SEED_ROWS)
        start = time.perf_counter()
        _interleaved_rebuild(table, ROUNDS)
        rebuild_s = min(rebuild_s, time.perf_counter() - start)
    return sealed_s, rebuild_s, ROUNDS / sealed_s


def measure_pin_overhead() -> tuple[float, float, float]:
    """(direct_s, pinned_s, overhead fraction) for the query workload."""
    catalog = Catalog()
    catalog.create_table(_seed_table("snap_query", QUERY_ROWS))
    catalog.analyze_table("snap_query")
    engine = QueryEngine(catalog, CostModel())

    def direct():
        # One snapshot reused for every query: the pre-epoch baseline
        # shape, no per-query pin.
        snap = engine.pin()
        return [
            engine.halo_members("snap_query", q % HALOS, at=snap)
            for q in range(QUERIES)
        ]

    def pinned():
        # The gateway's shape: every query pins the current epoch.
        return [
            engine.halo_members("snap_query", q % HALOS)
            for q in range(QUERIES)
        ]

    for direct_result, pinned_result in zip(direct(), pinned(), strict=True):
        assert direct_result.rows == pinned_result.rows, "rows diverged"
        assert direct_result.meter == pinned_result.meter, "meters diverged"

    direct_s = float("inf")
    pinned_s = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        direct()
        direct_s = min(direct_s, time.perf_counter() - start)
        start = time.perf_counter()
        pinned()
        pinned_s = min(pinned_s, time.perf_counter() - start)
    return direct_s, pinned_s, pinned_s / direct_s - 1.0


def test_snapshot_cow(emit):
    """Acceptance: >= 3x on interleaved insert+scan, pin overhead < 5%."""
    sealed_s, rebuild_s, rounds_per_s = measure_interleaving()
    direct_s, pinned_s, overhead = measure_pin_overhead()
    speedup = rebuild_s / sealed_s

    lines = [
        f"== sealed-segment COW shadow: {ROUNDS} interleaved insert+scan "
        f"rounds over {SEED_ROWS} seed rows (bit-identical columns "
        "asserted) ==",
        f"{'path':<22} {'seconds':>9} {'rounds/s':>10}",
        f"{'invalidate+rebuild':<22} {rebuild_s:>9.4f} "
        f"{ROUNDS / rebuild_s:>10.0f}",
        f"{'sealed segments':<22} {sealed_s:>9.4f} {rounds_per_s:>10.0f}",
        f"speedup: {speedup:.1f}x (floor {SPEEDUP_FLOOR}x)",
        "",
        f"== snapshot pin overhead: {QUERIES} halo_members queries over "
        f"{QUERY_ROWS} rows (identical rows+meters asserted) ==",
        f"reuse one snapshot : {direct_s:.4f}s",
        f"pin per query      : {pinned_s:.4f}s",
        f"overhead           : {overhead:+.2%} (ceiling "
        f"{OVERHEAD_CEILING:.0%})",
    ]
    emit("snapshot_cow", "\n".join(lines))

    harness.record(
        "snapshot_cow",
        speedup=speedup,
        n=ROUNDS,
        seed=SEED,
        floor=SPEEDUP_FLOOR,
        extra={
            "interleaved_rounds_per_s": round(rounds_per_s),
            "pin_overhead": round(overhead, 4),
            "query_rows": QUERY_ROWS,
            "queries": QUERIES,
        },
    )

    if harness.enforce_floors():
        assert speedup >= SPEEDUP_FLOOR, (
            f"sealed shadow only {speedup:.1f}x faster over {ROUNDS} rounds"
        )
        assert overhead < OVERHEAD_CEILING, (
            f"snapshot pinning costs {overhead:.2%} per query"
        )


if __name__ == "__main__":

    class _Stdout:
        def __call__(self, name, text):
            print(text)

    test_snapshot_cow(_Stdout())
