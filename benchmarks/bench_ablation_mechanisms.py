"""ABL1/ABL2 — ablations of the design choices DESIGN.md calls out.

ABL1: the Shapley mechanism vs Example 1's pay-your-bid scheme — measure
how much a strategic under-bidder gains under each. ABL2: AddOn's
residual-bid + cumulative-set design vs Example 2's naive per-slot Shapley
— measure the free-rider's gain from hiding early value under each.
The mechanisms should price both manipulations to zero advantage.
"""

from __future__ import annotations

import numpy as np
from conftest import trials

from repro import AdditiveBid, run_addon, run_shapley
from repro.baseline.naive import run_naive_online_shapley, run_naive_pay_your_bid
from repro.core import accounting
from repro.utils.rng import spawn_rngs


def _underbid_gain(mechanism, cost: float, rng) -> float:
    """Utility gain of user 0 from shading her bid 30% under ``mechanism``."""
    values = rng.uniform(0.0, 50.0, size=6)
    truth = {k: float(values[k]) for k in range(6)}

    def utility(bids):
        result = mechanism(cost, bids)
        return truth[0] - result.payment(0) if 0 in result.serviced else 0.0

    shaded = dict(truth)
    shaded[0] = truth[0] * 0.7
    return utility(shaded) - utility(truth)


def test_abl1_pay_your_bid_vs_shapley(benchmark, emit):
    n = trials(2000)

    def run():
        gains = {"shapley": [], "pay-your-bid": []}
        for rng in spawn_rngs(1234, n):
            cost = float(rng.uniform(10.0, 150.0))
            state = rng.bit_generator.state
            gains["shapley"].append(_underbid_gain(run_shapley, cost, rng))
            rng.bit_generator.state = state
            gains["pay-your-bid"].append(
                _underbid_gain(run_naive_pay_your_bid, cost, rng)
            )
        return {k: np.asarray(v) for k, v in gains.items()}

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    shapley_mean = gains["shapley"].mean()
    naive_mean = gains["pay-your-bid"].mean()
    naive_win_rate = (gains["pay-your-bid"] > 1e-9).mean()
    table = (
        "== ABL1: mean utility gain from underbidding 30% ==\n"
        f"Shapley Value Mechanism : {shapley_mean:+.4f} "
        f"(wins {(gains['shapley'] > 1e-9).mean():.0%} of games)\n"
        f"Pay-your-bid (Example 1): {naive_mean:+.4f} "
        f"(wins {naive_win_rate:.0%} of games)"
    )
    emit("abl1_pay_your_bid", table)
    assert shapley_mean <= 1e-9, "underbidding must never pay under Shapley"
    assert naive_mean > 0, "underbidding should pay under pay-your-bid"
    assert naive_win_rate > 0.3


def test_abl2_addon_vs_naive_online(benchmark, emit):
    n = trials(2000)

    def free_ride_gain(mechanism, cost, rng) -> float:
        # User 0's value sits mostly in slot 2 (Example 2's shape): hiding
        # the small slot-1 value dodges the whole cost-share if the scheme
        # lets her ride free after implementation.
        v1 = float(rng.uniform(0.0, 5.0))
        v2 = float(rng.uniform(10.0, 30.0))
        truth = AdditiveBid.over(1, [v1, v2])
        others = {
            k: AdditiveBid.over(1, [float(rng.uniform(10.0, 60.0))])
            for k in range(1, 5)
        }

        def utility(my_bid):
            bids = dict(others)
            bids[0] = my_bid
            outcome = mechanism(cost, bids, horizon=2)
            return accounting.addon_user_utility(outcome, 0, truth)

        hiding = AdditiveBid.over(2, [v2])  # conceal the slot-1 value
        return utility(hiding) - utility(truth)

    def run():
        gains = {"addon": [], "naive-online": []}
        for rng in spawn_rngs(99, n):
            cost = float(rng.uniform(20.0, 120.0))
            state = rng.bit_generator.state
            gains["addon"].append(free_ride_gain(run_addon, cost, rng))
            rng.bit_generator.state = state
            gains["naive-online"].append(
                free_ride_gain(run_naive_online_shapley, cost, rng)
            )
        return {k: np.asarray(v) for k, v in gains.items()}

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    addon_mean = gains["addon"].mean()
    naive_mean = gains["naive-online"].mean()
    naive_win_rate = (gains["naive-online"] > 1e-9).mean()
    table = (
        "== ABL2: mean utility gain from hiding slot-1 value ==\n"
        f"AddOn (Mechanism 2)          : {addon_mean:+.4f} "
        f"(wins {(gains['addon'] > 1e-9).mean():.0%} of games)\n"
        f"Naive per-slot Shapley (Ex.2): {naive_mean:+.4f} "
        f"(wins {naive_win_rate:.0%} of games)"
    )
    emit("abl2_free_riding", table)
    assert addon_mean <= 1e-9, "free-riding must never pay under AddOn"
    assert naive_mean > 0, "free-riding should pay under the naive scheme"
