"""Columnar vs iterator execution on the merger-tree access-path workload.

Runs the same merger-tree step queries (``top_contributor`` over a pair of
snapshots) through the iterator engine and the columnar vector engine, for
every access path the planner can choose — base-table scan, materialized
(pid, halo) view, and hash indexes. Before any timing is trusted, every
query is checked for **identical rows and identical CostMeter charges**
across the two modes (exact equality, no tolerance): the columnar path is
a physical rewrite and must be invisible to the paper's cost model.

The acceptance bar is a >= 10x wall-clock speedup on the workload at
40,000 particles; the vectorized friends-of-friends finder is raced
against its per-particle reference implementation at the same scale.
Run as a script for the full table:

    PYTHONPATH=src python benchmarks/bench_columnar.py
"""

from __future__ import annotations

import time

import numpy as np

import harness
from repro.astro.halos import friends_of_friends, friends_of_friends_reference
from repro.astro.simulator import UniverseConfig, UniverseSimulator
from repro.db import Catalog, MaterializedView, QueryEngine
from repro.db.expr import Col, Const, Ne
from repro.db.operators import Filter, Project, SeqScan
from repro.db.planner import view_name_for

PARTICLES = harness.scale(40_000, 2_000)
HALOS_QUERIED = 8
SEED = 11
SPEEDUP_FLOOR = 10.0
FOF_FLOOR = 3.0
REPEATS = 3


def _load_catalog() -> tuple[list, int]:
    """Two PARTICLES-sized snapshots, returned as raw tables."""
    config = UniverseConfig(
        particles=PARTICLES, halos=30, snapshots=2, min_halo_members=10
    )
    snapshots = UniverseSimulator(config, rng=SEED).run()
    return [s.to_table() for s in snapshots], len(snapshots[-1].pids)


def _catalog_for(tables, path: str) -> Catalog:
    """A fresh catalog holding the tables plus one access path's helpers."""
    catalog = Catalog()
    for table in tables:
        catalog.create_table(table)
    names = [t.name for t in tables]
    if path == "view":
        for name in names:
            base = catalog.table(name)
            catalog.create_view(
                MaterializedView(
                    view_name_for(name),
                    lambda base=base: Project(
                        Filter(SeqScan(base), Ne(Col("halo"), Const(-1))),
                        ["pid", "halo"],
                    ),
                )
            )
    elif path == "index":
        catalog.create_hash_index(names[1], "halo")
        catalog.create_hash_index(names[0], "pid")
    return catalog


def _workload(engine: QueryEngine, newer: str, older: str) -> list:
    """One merger-tree pass: the top contributor of each queried halo."""
    return [
        engine.top_contributor(newer, halo, older)
        for halo in range(HALOS_QUERIED)
    ]


def _check_equivalent(results_iter, results_vec, path: str) -> None:
    for (top_i, meter_i), (top_v, meter_v) in zip(
        results_iter, results_vec, strict=True
    ):
        assert top_i == top_v, f"{path}: progenitors diverged"
        assert meter_i == meter_v, f"{path}: meters diverged"


def _time_best(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_access_paths(tables) -> dict[str, tuple[float, float]]:
    """{path: (iterator_s, vector_s)} with equivalence asserted per path."""
    newer, older = tables[1].name, tables[0].name
    timings: dict[str, tuple[float, float]] = {}
    for path in ("base", "view", "index"):
        catalog = _catalog_for(tables, path)
        iterator = QueryEngine(catalog, mode="iterator")
        vector = QueryEngine(catalog, mode="vector")
        _check_equivalent(
            _workload(iterator, newer, older),
            _workload(vector, newer, older),
            path,
        )
        timings[path] = (
            _time_best(lambda: _workload(iterator, newer, older)),
            _time_best(lambda: _workload(vector, newer, older)),
        )
    return timings


def measure_fof() -> tuple[float, float]:
    """(reference_s, vectorized_s) for the halo finder at PARTICLES."""
    rng = np.random.default_rng(SEED)
    centers = rng.uniform(0, 300, size=(30, 3))
    assignment = rng.integers(0, 30, size=PARTICLES)
    positions = centers[assignment] + rng.normal(0, 1.5, size=(PARTICLES, 3))
    vectorized = friends_of_friends(positions, 2.4, 10)
    start = time.perf_counter()
    reference = friends_of_friends_reference(positions, 2.4, 10)
    reference_s = time.perf_counter() - start
    assert np.array_equal(
        np.sort(np.bincount(vectorized[vectorized >= 0])),
        np.sort(np.bincount(reference[reference >= 0])),
    ), "halo finders disagree on cluster sizes"
    vector_s = _time_best(lambda: friends_of_friends(positions, 2.4, 10))
    return reference_s, vector_s


def test_columnar_speedup(emit):
    """Acceptance bar: >= 10x on the access-path workload at 40k particles."""
    tables, n = _load_catalog()
    timings = measure_access_paths(tables)
    fof_reference_s, fof_vector_s = measure_fof()

    iterator_total = sum(t[0] for t in timings.values())
    vector_total = sum(t[1] for t in timings.values())
    workload_speedup = iterator_total / vector_total
    fof_speedup = fof_reference_s / fof_vector_s

    lines = [
        f"== columnar vs iterator engine: merger-tree step x {HALOS_QUERIED} "
        f"halos, {n} particles (identical rows+meters asserted) ==",
        f"{'path':<10} {'iterator s':>11} {'vector s':>9} {'speedup':>9}",
    ]
    for path, (iterator_s, vector_s) in timings.items():
        lines.append(
            f"{path:<10} {iterator_s:>11.4f} {vector_s:>9.4f} "
            f"{iterator_s / vector_s:>8.1f}x"
        )
    lines.append(
        f"{'workload':<10} {iterator_total:>11.4f} {vector_total:>9.4f} "
        f"{workload_speedup:>8.1f}x"
    )
    lines.append(
        f"{'fof':<10} {fof_reference_s:>11.4f} {fof_vector_s:>9.4f} "
        f"{fof_speedup:>8.1f}x"
    )
    emit("columnar_engine", "\n".join(lines))

    harness.record(
        "columnar_engine",
        speedup=workload_speedup,
        n=n,
        seed=SEED,
        floor=SPEEDUP_FLOOR,
        extra={
            "paths": {
                path: round(iterator_s / vector_s, 2)
                for path, (iterator_s, vector_s) in timings.items()
            },
            "fof_speedup": round(fof_speedup, 2),
            "halos_queried": HALOS_QUERIED,
        },
    )

    if harness.enforce_floors():
        assert workload_speedup >= SPEEDUP_FLOOR, (
            f"columnar path only {workload_speedup:.1f}x faster at {n} particles"
        )
        assert fof_speedup >= FOF_FLOOR, (
            f"vectorized halo finder only {fof_speedup:.1f}x faster"
        )


if __name__ == "__main__":

    class _Stdout:
        def __call__(self, name, text):
            print(text)

    test_columnar_speedup(_Stdout())
