"""Shared fixtures for the benchmark harnesses.

Every figure benchmark regenerates its paper figure as a plain-text series
table, printed to stdout (run with ``-s`` to watch) and written under
``benchmarks/results/`` so EXPERIMENTS.md claims can be checked against a
fresh run. Trial counts default to paper-meaningful-but-laptop-fast values
and can be scaled with the ``REPRO_BENCH_TRIALS_SCALE`` environment
variable (e.g. ``=4`` for quadruple trials).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def trials(base: int) -> int:
    """Scale a base trial count by REPRO_BENCH_TRIALS_SCALE."""
    scale = float(os.environ.get("REPRO_BENCH_TRIALS_SCALE", "1"))
    return max(1, int(base * scale))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Write (and echo) one experiment's formatted table."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _emit


@pytest.fixture(scope="session")
def astronomy_use_case():
    """The full 27-snapshot use case, built once per benchmark session."""
    from repro.astro import build_use_case

    return build_use_case()
