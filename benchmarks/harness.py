"""Machine-readable benchmark trajectory.

Every speedup benchmark records its result through :func:`record`, which
writes one JSON file per benchmark under ``benchmarks/results/`` and
merges the same entry into the top-level ``BENCH_PR10.json`` so the
repository carries a machine-readable trajectory (speedup, scale, seed,
commit) rather than only ad-hoc text tables. Earlier committed
trajectories (``BENCH_PR9.json``, ``BENCH_PR6.json``, ``BENCH_PR4.json``,
``BENCH_PR3.json``) stay in place as regression baselines:
``benchmarks/check_regression.py`` compares fresh results against them
and fails CI on a >20% speedup regression.

Smoke mode (``REPRO_BENCH_SMOKE=1``) is for CI: benchmarks shrink their
scales via :func:`scale` and skip their perf-floor assertions (see
:func:`enforce_floors`) so the job proves the benchmark *code* runs in
seconds without asserting timings on shared runners. Entries recorded in
smoke mode are flagged as such and never overwrite full-run numbers.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path

__all__ = [
    "RESULTS_DIR",
    "TRAJECTORY_PATH",
    "BASELINE_PATHS",
    "smoke",
    "scale",
    "enforce_floors",
    "record",
]

ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"
TRAJECTORY_PATH = ROOT / "BENCH_PR10.json"

#: Committed trajectories, newest first — the regression-gate baselines.
BASELINE_PATHS = (
    ROOT / "BENCH_PR10.json",
    ROOT / "BENCH_PR9.json",
    ROOT / "BENCH_PR6.json",
    ROOT / "BENCH_PR4.json",
    ROOT / "BENCH_PR3.json",
)


def smoke() -> bool:
    """True when running as a CI smoke check (tiny scales, no floors)."""
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def scale(full, tiny):
    """``full`` normally, ``tiny`` in smoke mode."""
    return tiny if smoke() else full


def enforce_floors() -> bool:
    """Whether perf-floor assertions should be enforced for this run."""
    return not smoke()


def _git_commit() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=ROOT,
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def record(
    name: str,
    *,
    speedup: float,
    n: int,
    seed: int,
    floor: float | None = None,
    extra: dict | None = None,
) -> dict:
    """Persist one benchmark result; returns the recorded entry.

    ``speedup`` is the benchmark's headline ratio, ``n`` its headline
    scale (users, particles, ...), ``floor`` the asserted minimum (None
    when the benchmark has no hard floor), and ``extra`` any benchmark-
    specific rows worth keeping machine-readable.
    """
    entry = {
        "benchmark": name,
        "speedup": round(float(speedup), 3),
        "n": int(n),
        "seed": int(seed),
        "floor": None if floor is None else float(floor),
        "commit": _git_commit(),
        "python": platform.python_version(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "smoke": smoke(),
    }
    if extra:
        entry["extra"] = extra

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(json.dumps(entry, indent=2) + "\n")

    trajectory: dict = {"results": {}}
    if TRAJECTORY_PATH.exists():
        try:
            trajectory = json.loads(TRAJECTORY_PATH.read_text())
        except json.JSONDecodeError:
            trajectory = {"results": {}}
    trajectory.setdefault("results", {})
    # Smoke runs never clobber full-run numbers: they live under their own
    # trajectory key, which doubles as the regression-gate baseline for CI
    # smoke runs (see benchmarks/check_regression.py).
    key = f"{name}@smoke" if entry["smoke"] else name
    trajectory["results"][key] = entry
    trajectory["updated_at"] = entry["recorded_at"]
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    return entry
