"""Multi-process fleet scaling curve: the same period on 1..8 workers.

Builds one columnar population (200 games, 1,000,000 users at full
scale), runs it through :meth:`repro.fleet.FleetEngine.build` at every
worker count on the curve, and asserts every pool's report bit-identical
to the single-process engine's — payments, grants, implementations,
per-game revenue, ledger, and event log — before any timing is trusted.
The headline ratio is single-process seconds over 4-worker-pool seconds
(2-worker in smoke mode).

The speedup floor (>= 2x at 4 workers) is only meaningful on hardware
that can actually run 4 workers concurrently: on fewer than 4 CPU cores
the pool degenerates into time-sliced serialization plus pipe traffic,
so the floor — like every wall-clock floor in smoke mode — is reported
but not asserted (the recorded entry carries the measured ratio and the
core count either way). Run as a script for the full curve:

    PYTHONPATH=src python benchmarks/bench_fleet_mp.py
"""

from __future__ import annotations

import gc
import os
import time

import harness
from repro.cloudsim import OptimizationCatalog
from repro.experiments.fleet_scale import _assert_reports_equal
from repro.fleet import FleetEngine
from repro.workloads.fleet import fleet_batches, fleet_game_costs

#: (games, users, slots, shards) of the measured period.
GAMES, USERS, SLOTS, SHARDS = harness.scale(
    (200, 1_000_000, 2000, 8), (8, 2_000, 60, 4)
)

#: Worker counts on the curve; index 0 is the single-process baseline.
WORKER_CURVE = harness.scale((1, 2, 4, 8), (1, 2))

#: Headline point: single-process vs this pool size.
HEADLINE_WORKERS = harness.scale(4, 2)

SPEEDUP_FLOOR = 2.0
SEED = 2012


def _run_once(catalog, batches, workers):
    started = time.perf_counter()
    fleet = FleetEngine.build(
        catalog, horizon=SLOTS, shards=SHARDS, workers=workers
    )
    try:
        fleet.ingest_many(batches)
        report = fleet.run_to_end()
    finally:
        fleet.close()
    return time.perf_counter() - started, report


def test_fleet_mp_scaling_curve(emit):
    """1M users, bit-identical at every worker count; >=2x at 4 workers
    (asserted only with >= 4 cores on a full run)."""
    costs = fleet_game_costs(SEED, GAMES, 30.0)
    catalog = OptimizationCatalog.from_costs(costs)
    batches = fleet_batches(SEED + 1, USERS, GAMES, SLOTS, 4)

    rows = []
    baseline_report = None
    baseline_s = None
    for workers in WORKER_CURVE:
        seconds, report = _run_once(catalog, batches, workers)
        if baseline_report is None:
            baseline_report, baseline_s = report, seconds
        else:
            _assert_reports_equal(
                baseline_report, report, f"{workers}-worker pool"
            )
        rows.append((workers, seconds, baseline_s / seconds))
        del report
        gc.collect()

    cores = os.cpu_count() or 1
    table = "\n".join(
        [
            "== multi-process fleet scaling "
            f"({GAMES} games, {USERS} users, {SLOTS} slots, "
            f"{cores} cores; bit-identical outcomes asserted) ==",
            f"{'workers':>8} {'seconds':>9} {'speedup':>9}",
        ]
        + [f"{w:>8} {s:>9.3f} {x:>8.2f}x" for w, s, x in rows]
    )
    emit("fleet_engine_mp", table)

    by_workers = {w: s for w, s, _ in rows}
    speedup = baseline_s / by_workers[HEADLINE_WORKERS]
    gate = harness.enforce_floors() and cores >= HEADLINE_WORKERS
    harness.record(
        "fleet_engine_mp",
        speedup=speedup,
        n=USERS,
        seed=SEED,
        floor=SPEEDUP_FLOOR if gate else None,
        extra={
            "games": GAMES,
            "slots": SLOTS,
            "shards": SHARDS,
            "cores": cores,
            "curve": [[w, round(s, 3), round(x, 3)] for w, s, x in rows],
        },
    )
    if gate:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{HEADLINE_WORKERS}-worker pool only {speedup:.2f}x the "
            f"single-process engine at {GAMES} games / {USERS} users"
        )


if __name__ == "__main__":

    class _Stdout:
        def __call__(self, name, text):
            print(text)

    test_fleet_mp_scaling_curve(_Stdout())
